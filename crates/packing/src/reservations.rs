//! Interval-reservation timelines: revocable commitments and reusable holes.
//!
//! [`crate::timeline::ProcessorTimeline`] models the schedule structure the
//! paper's §3 list algorithms analyse: one "busy until" frontier per
//! processor, idle holes below the frontier discarded on purpose.  That model
//! cannot express the three operations a production online scheduler needs —
//! *backfilling* a new task into an idle hole below the frontier, *revoking*
//! a commitment that has not started yet (task departures, preemptive
//! re-planning of queued work), and *truncating* a reservation that finishes
//! early.
//!
//! [`ReservationTimeline`] keeps, per processor, the sorted set of busy
//! intervals (equivalently: its complement, the sorted free-interval set)
//! instead of a single frontier.  Every commitment is a first-class
//! reservation identified by a [`ReservationId`] handle that supports
//! [`ReservationTimeline::cancel`] and [`ReservationTimeline::truncate_at`]
//! (the latter also preempts *running* reservations: the executed head stays
//! on the books, only the unexecuted tail is revoked); window queries are
//! *duration-aware* and may land inside holes.  Requests that would rewrite
//! garbage-collected or executed history fail with a typed
//! [`ReservationError`] instead of panicking.
//!
//! Two query modes are provided ([`HolePolicy`]):
//!
//! * [`HolePolicy::FrontierOnly`] reproduces the `ProcessorTimeline` answers
//!   exactly — both share one sliding-window implementation over the frontier
//!   array, so the offline list algorithms see zero behavioural drift (pinned
//!   by parity tests).  Holes are still *recorded*, which is what makes
//!   cancellation work even in frontier mode.
//! * [`HolePolicy::Backfill`] serves the earliest window that fits the
//!   requested duration anywhere at or after the current floor, first-fitting
//!   into idle holes below the frontier.
//!
//! Past intervals are garbage-collected as the floor advances
//! ([`ReservationTimeline::advance_to`]), so steady-state query cost is
//! proportional to the number of *live* reservations, not to history.

use std::cell::Cell;

use crate::timeline::{earliest_frontier_window, TieBreak, Window};

/// Opaque handle to one reservation, returned by
/// [`ReservationTimeline::reserve`] and accepted by
/// [`ReservationTimeline::cancel`] / [`ReservationTimeline::truncate_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(usize);

/// Why a revocation or truncation request was rejected.
///
/// Revocation interacts with the floor-advance garbage collection: once the
/// floor has moved past (part of) a reservation, that history is immutable —
/// cancelling it or cutting into it would silently rewrite the past, so such
/// requests fail with a typed error instead of panicking or dropping
/// history.  The timeline state is untouched by a failed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReservationError {
    /// The handle was already cancelled (or never issued by this timeline).
    AlreadyCancelled {
        /// The offending handle.
        id: ReservationId,
    },
    /// `cancel` on a reservation that started at or before the advanced
    /// floor: it is running (straddles the floor) or lies entirely in the
    /// past, and its history cannot be unwritten.  Running reservations are
    /// preempted with [`ReservationTimeline::truncate_at`] instead.
    StartedBeforeFloor {
        /// The offending handle.
        id: ReservationId,
        /// Where the reservation starts.
        start: f64,
        /// The current floor.
        floor: f64,
    },
    /// `truncate_at` with a cut before the reservation's start (a negative
    /// reservation is meaningless; use [`ReservationTimeline::cancel`] on a
    /// not-yet-started reservation instead).
    CutBeforeStart {
        /// The offending handle.
        id: ReservationId,
        /// The requested cut.
        cut: f64,
        /// Where the reservation starts.
        start: f64,
    },
    /// `truncate_at` with a cut before the advanced floor: the part of the
    /// reservation at or before the floor already executed and cannot be
    /// reclaimed.
    CutBeforeFloor {
        /// The offending handle.
        id: ReservationId,
        /// The requested cut.
        cut: f64,
        /// The current floor.
        floor: f64,
    },
}

impl std::fmt::Display for ReservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReservationError::AlreadyCancelled { id } => {
                write!(f, "reservation {id:?} was already cancelled")
            }
            ReservationError::StartedBeforeFloor { id, start, floor } => write!(
                f,
                "reservation {id:?} started at {start}, at or before the floor {floor} — \
                 its history cannot be cancelled (truncate the tail instead)"
            ),
            ReservationError::CutBeforeStart { id, cut, start } => write!(
                f,
                "cut {cut} precedes the start {start} of reservation {id:?}"
            ),
            ReservationError::CutBeforeFloor { id, cut, floor } => write!(
                f,
                "cut {cut} for reservation {id:?} rewrites the past (floor {floor})"
            ),
        }
    }
}

impl std::error::Error for ReservationError {}

/// Whether window queries may reuse idle holes below the frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HolePolicy {
    /// Reproduce [`crate::timeline::ProcessorTimeline`] exactly: tasks start
    /// at or after the per-processor frontier, holes are never reused (the
    /// schedule structure analysed in the paper).
    #[default]
    FrontierOnly,
    /// Serve the earliest window whose `duration` fits, first-fitting into
    /// existing holes below the frontier.
    Backfill,
}

/// One busy interval on one processor (a slice of a reservation).
#[derive(Debug, Clone, Copy, PartialEq)]
struct BusyInterval {
    start: f64,
    end: f64,
    id: ReservationId,
}

/// The full record of a reservation, kept for cancel/truncate bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Reservation {
    first: usize,
    count: usize,
    start: f64,
    end: f64,
}

/// Monotone operation counters for one timeline: how many window queries ran,
/// how many busy intervals the hole scans stepped over, and how many
/// reservations were committed, cancelled, and truncated.  Pure observability
/// metadata — two timelines with identical busy state compare equal even
/// when their counters differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimelineStats {
    /// `earliest_window` queries answered.
    pub window_queries: u64,
    /// Busy intervals examined (cursor steps) across all hole-scan queries;
    /// stays 0 in frontier-only mode, where no holes are scanned.
    pub holes_scanned: u64,
    /// Reservations committed via [`ReservationTimeline::reserve`].
    pub reservations: u64,
    /// Reservations revoked via [`ReservationTimeline::cancel`].
    pub cancels: u64,
    /// Reservations shortened via [`ReservationTimeline::truncate_at`]
    /// (only cuts that actually freed a tail are counted).
    pub truncations: u64,
}

impl TimelineStats {
    /// Fold another timeline's counters into this one.
    ///
    /// The counters are **per-timeline**: a sharded engine runs one
    /// [`ReservationTimeline`] per shard, so reporting any single shard's
    /// snapshot — or only the last shard's — undercounts the run.  Summing
    /// is the correct aggregation for every field (they are all monotone
    /// operation counts, not gauges).
    pub fn merge(&mut self, other: TimelineStats) {
        self.window_queries += other.window_queries;
        self.holes_scanned += other.holes_scanned;
        self.reservations += other.reservations;
        self.cancels += other.cancels;
        self.truncations += other.truncations;
    }

    /// Sum a collection of per-timeline snapshots (see
    /// [`TimelineStats::merge`]).
    pub fn aggregate<I: IntoIterator<Item = TimelineStats>>(stats: I) -> TimelineStats {
        let mut total = TimelineStats::default();
        for snapshot in stats {
            total.merge(snapshot);
        }
        total
    }
}

/// Interior-mutable counter cells: window queries are `&self`, so the stats
/// must be updatable without `&mut`.
#[derive(Debug, Clone, Default)]
struct StatsCells {
    window_queries: Cell<u64>,
    holes_scanned: Cell<u64>,
    reservations: Cell<u64>,
    cancels: Cell<u64>,
    truncations: Cell<u64>,
}

impl StatsCells {
    fn snapshot(&self) -> TimelineStats {
        TimelineStats {
            window_queries: self.window_queries.get(),
            holes_scanned: self.holes_scanned.get(),
            reservations: self.reservations.get(),
            cancels: self.cancels.get(),
            truncations: self.truncations.get(),
        }
    }

    fn bump(cell: &Cell<u64>, delta: u64) {
        cell.set(cell.get() + delta);
    }
}

/// Per-processor sorted busy-interval sets with contiguous-window queries,
/// revocable reservations and a frontier-compatible query mode.
#[derive(Debug, Clone)]
pub struct ReservationTimeline {
    policy: HolePolicy,
    /// Nothing may be reserved before this time (the simulation clock).
    floor: f64,
    /// Per-processor `max(floor, latest busy end)` — the frontier the
    /// [`HolePolicy::FrontierOnly`] queries run on.
    frontier: Vec<f64>,
    /// Per-processor busy intervals, sorted by start, non-overlapping.
    busy: Vec<Vec<BusyInterval>>,
    /// Per-processor offline flag — window queries skip offline processors
    /// and [`ReservationTimeline::reserve`] rejects them.
    offline: Vec<bool>,
    /// Per-processor availability horizon: `max(floor, latest repair time)`.
    /// A processor repaired at a future time must not accept work before it,
    /// even after a cancellation lowers its frontier or a backfill query
    /// walks its holes — this is the state a bare frontier cannot carry.
    available_from: Vec<f64>,
    /// Reservation records by id; `None` once cancelled.
    reservations: Vec<Option<Reservation>>,
    /// Operation counters (observability only; excluded from `PartialEq`).
    stats: StatsCells,
}

impl PartialEq for ReservationTimeline {
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
            && self.floor == other.floor
            && self.frontier == other.frontier
            && self.busy == other.busy
            && self.offline == other.offline
            && self.available_from == other.available_from
            && self.reservations == other.reservations
    }
}

impl ReservationTimeline {
    /// A timeline for `processors` processors, all free at time 0.
    pub fn new(processors: usize, policy: HolePolicy) -> Self {
        assert!(processors >= 1, "need at least one processor");
        ReservationTimeline {
            policy,
            floor: 0.0,
            frontier: vec![0.0; processors],
            busy: vec![Vec::new(); processors],
            offline: vec![false; processors],
            available_from: vec![0.0; processors],
            reservations: Vec::new(),
            stats: StatsCells::default(),
        }
    }

    /// A snapshot of the monotone operation counters — callers diff two
    /// snapshots to attribute hole-scan work to individual decisions.
    pub fn stats(&self) -> TimelineStats {
        self.stats.snapshot()
    }

    /// Number of processors tracked.
    pub fn processors(&self) -> usize {
        self.frontier.len()
    }

    /// The query mode.
    pub fn policy(&self) -> HolePolicy {
        self.policy
    }

    /// The current floor (nothing may be reserved before it).
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The availability frontier of one processor: `max(floor, latest busy
    /// end)` — identical to [`crate::timeline::ProcessorTimeline::free_at`]
    /// under frontier-only use.
    pub fn free_at(&self, processor: usize) -> f64 {
        self.frontier[processor]
    }

    /// The latest busy end over all processors (the horizon after which the
    /// whole machine is free).
    pub fn makespan(&self) -> f64 {
        self.frontier.iter().cloned().fold(0.0, f64::max)
    }

    /// Number of live (not cancelled, not fully garbage-collected)
    /// reservations ending after the floor.
    pub fn live_reservations(&self) -> usize {
        self.reservations
            .iter()
            .flatten()
            .filter(|r| r.end > self.floor + 1e-12)
            .count()
    }

    /// Raise the floor (monotone).  In frontier-only mode idle frontiers are
    /// pulled up to the new floor, exactly like
    /// [`crate::timeline::ProcessorTimeline::advance_all_to`]; in backfill
    /// mode holes after the floor stay usable.  Busy intervals entirely in
    /// the past are garbage-collected.
    pub fn advance_to(&mut self, time: f64) {
        assert!(
            time >= self.floor - 1e-9,
            "floor must be monotone: floor = {}, asked {time}",
            self.floor
        );
        if time <= self.floor {
            return;
        }
        self.floor = time;
        for f in &mut self.frontier {
            if *f < time {
                *f = time;
            }
        }
        for a in &mut self.available_from {
            if *a < time {
                *a = time;
            }
        }
        for intervals in &mut self.busy {
            intervals.retain(|iv| iv.end > time + 1e-12);
        }
    }

    /// The availability horizon of one processor: `max(floor, latest repair
    /// time)`.  No reservation may start before it on that processor, in
    /// either [`HolePolicy`] mode.
    pub fn available_from(&self, processor: usize) -> f64 {
        self.available_from[processor]
    }

    /// Find the earliest start for a task needing `count` contiguous
    /// processors for `duration` time, applying the given tie-breaking rule,
    /// without committing.
    ///
    /// In [`HolePolicy::FrontierOnly`] mode the duration is irrelevant (every
    /// window extends to infinity above the frontier) and the answer is
    /// bit-identical to [`crate::timeline::ProcessorTimeline`].  In
    /// [`HolePolicy::Backfill`] mode the earliest gap of length `duration` at
    /// or after the floor is found per window position, first-fitting holes.
    /// Offline processors are skipped: a window containing one is reported
    /// with an **infinite** start, so the overall answer is infinite exactly
    /// when no all-online window of `count` processors exists — callers must
    /// bound `count` by [`ReservationTimeline::max_contiguous_online`]
    /// before reserving.
    pub fn earliest_window(&self, count: usize, duration: f64, tie: TieBreak) -> Window {
        StatsCells::bump(&self.stats.window_queries, 1);
        match self.policy {
            HolePolicy::FrontierOnly => {
                if self.offline.iter().any(|&off| off) {
                    // Offline processors get an infinite frontier so the
                    // sliding-window search never picks them.
                    let effective: Vec<f64> = self
                        .frontier
                        .iter()
                        .zip(&self.offline)
                        .map(|(&f, &off)| if off { f64::INFINITY } else { f })
                        .collect();
                    earliest_frontier_window(&effective, count, tie)
                } else {
                    earliest_frontier_window(&self.frontier, count, tie)
                }
            }
            HolePolicy::Backfill => self.earliest_hole_window(count, duration, tie),
        }
    }

    /// Duration-aware window search over the busy-interval sets.
    ///
    /// Per window position the busy intervals of the `count` processors are
    /// swept in global start order with one cursor per processor (the
    /// per-processor lists are sorted and non-overlapping, so start order is
    /// also end order), stopping at the first gap of length `duration` —
    /// under live load the gap appears after a handful of intervals, so a
    /// query touches far fewer intervals than a full collect-and-sort.
    fn earliest_hole_window(&self, count: usize, duration: f64, tie: TieBreak) -> Window {
        let m = self.processors();
        assert!(
            count >= 1 && count <= m,
            "window of {count} processors on {m}"
        );
        assert!(duration >= 0.0, "negative duration");
        let mut best_start = f64::INFINITY;
        let mut candidates: Vec<(usize, f64)> = Vec::with_capacity(m + 1 - count);
        let mut cursors: Vec<usize> = vec![0; count];
        let mut scanned = 0u64;
        for first in 0..=m - count {
            // A window touching an offline processor is not a candidate.
            if self.offline[first..first + count].iter().any(|&off| off) {
                continue;
            }
            for (i, p) in (first..first + count).enumerate() {
                // Skip intervals entirely in the past (ends are sorted too).
                cursors[i] = self.busy[p].partition_point(|iv| iv.end <= self.floor + 1e-12);
            }
            // Earliest gap of length `duration` at or after the floor and
            // every availability horizon in the window (a processor repaired
            // at a future time contributes no hole before the repair).
            let mut start = self.available_from[first..first + count]
                .iter()
                .fold(self.floor, |acc, &a| acc.max(a));
            loop {
                // The unseen interval with the smallest start across the
                // window's processors.
                let mut next: Option<(usize, f64)> = None;
                for (i, p) in (first..first + count).enumerate() {
                    if let Some(iv) = self.busy[p].get(cursors[i]) {
                        if next.is_none_or(|(_, s)| iv.start < s) {
                            next = Some((i, iv.start));
                        }
                    }
                }
                match next {
                    // The gap before the next interval is too short: the
                    // candidate start moves past that interval.
                    Some((i, s)) if s < start + duration - 1e-9 => {
                        let end = self.busy[first + i][cursors[i]].end;
                        if end > start {
                            start = end;
                        }
                        cursors[i] += 1;
                        scanned += 1;
                    }
                    // Either no intervals remain or the gap fits.
                    _ => break,
                }
            }
            candidates.push((first, start));
            if start < best_start - 1e-12 {
                best_start = start;
            }
        }
        StatsCells::bump(&self.stats.holes_scanned, scanned);
        // The same tie-breaking convention the frontier search uses.
        let effective_tie = match tie {
            TieBreak::PaperConvention => {
                if best_start <= 1e-12 {
                    TieBreak::Leftmost
                } else {
                    TieBreak::Rightmost
                }
            }
            other => other,
        };
        let chosen = candidates
            .iter()
            .filter(|(_, s)| (*s - best_start).abs() <= 1e-12)
            .map(|&(f, _)| f);
        let first = match effective_tie {
            TieBreak::Leftmost => chosen.min().unwrap_or(0),
            TieBreak::Rightmost => chosen.max().unwrap_or(0),
            TieBreak::PaperConvention => unreachable!("resolved above"),
        };
        Window {
            first,
            count,
            start: best_start,
        }
    }

    /// Commit a reservation on processors `[first, first+count)` over
    /// `[start, start+duration)` and return its handle.
    ///
    /// Panics if the placement starts before the floor, overlaps an existing
    /// reservation, or (in frontier-only mode) starts below a processor's
    /// frontier — the same contract as
    /// [`crate::timeline::ProcessorTimeline::commit`].
    pub fn reserve(
        &mut self,
        first: usize,
        count: usize,
        start: f64,
        duration: f64,
    ) -> ReservationId {
        assert!(duration >= 0.0, "negative duration");
        assert!(
            start >= self.floor - 1e-9,
            "reservation starts at {start}, before the floor {}",
            self.floor
        );
        let end = start + duration;
        let id = ReservationId(self.reservations.len());
        for p in first..first + count {
            assert!(!self.offline[p], "processor {p} is offline");
            assert!(
                start >= self.available_from[p] - 1e-9,
                "processor {p} is unavailable until {} but task starts at {start}",
                self.available_from[p]
            );
            if self.policy == HolePolicy::FrontierOnly {
                assert!(
                    self.frontier[p] <= start + 1e-9,
                    "processor {p} is busy until {} but task starts at {start}",
                    self.frontier[p]
                );
            }
            let intervals = &mut self.busy[p];
            let pos = intervals.partition_point(|iv| iv.start < start);
            if let Some(prev) = pos.checked_sub(1).and_then(|i| intervals.get(i)) {
                assert!(
                    prev.end <= start + 1e-9,
                    "processor {p} is busy over [{}, {}) but task starts at {start}",
                    prev.start,
                    prev.end
                );
            }
            if let Some(next) = intervals.get(pos) {
                assert!(
                    next.start >= end - 1e-9,
                    "processor {p} is busy from {} but task runs until {end}",
                    next.start
                );
            }
            intervals.insert(pos, BusyInterval { start, end, id });
            if self.frontier[p] < end {
                self.frontier[p] = end;
            }
        }
        self.reservations.push(Some(Reservation {
            first,
            count,
            start,
            end,
        }));
        StatsCells::bump(&self.stats.reservations, 1);
        id
    }

    /// Convenience: find the earliest window for `(count, duration)` and
    /// reserve it.  Returns the chosen window and the reservation handle.
    pub fn place(&mut self, count: usize, duration: f64, tie: TieBreak) -> (Window, ReservationId) {
        let w = self.earliest_window(count, duration, tie);
        let id = self.reserve(w.first, w.count, w.start, duration);
        (w, id)
    }

    /// Revoke a reservation that has not started yet, freeing its intervals.
    ///
    /// Fails with a typed [`ReservationError`] (leaving the timeline
    /// untouched) when the handle was already cancelled or the reservation
    /// started at or before the floor: a running reservation's history
    /// cannot be unwritten — preempt it with
    /// [`ReservationTimeline::truncate_at`] instead — and a reservation the
    /// floor-advance GC already passed is immutable.
    pub fn cancel(&mut self, id: ReservationId) -> Result<(), ReservationError> {
        let record = match self.reservations.get(id.0).copied().flatten() {
            Some(record) => record,
            None => return Err(ReservationError::AlreadyCancelled { id }),
        };
        if record.start < self.floor - 1e-9 {
            return Err(ReservationError::StartedBeforeFloor {
                id,
                start: record.start,
                floor: self.floor,
            });
        }
        self.reservations[id.0] = None;
        for p in record.first..record.first + record.count {
            self.busy[p].retain(|iv| iv.id != id);
            self.recompute_frontier(p);
        }
        StatsCells::bump(&self.stats.cancels, 1);
        Ok(())
    }

    /// Shrink a reservation's end to `cut`, freeing the tail `[cut, end)` —
    /// a task that finished early, or a *running* task preempted for
    /// re-allotment (the segment executed before `cut` stays on the books;
    /// only the unexecuted tail is revoked).  Returns whether a tail was
    /// actually freed: a cut at or after the current end is a no-op and
    /// returns `Ok(false)`, so callers tracking per-reservation state can
    /// tell the difference.
    ///
    /// Fails with a typed [`ReservationError`] (leaving the timeline
    /// untouched) when the handle was already cancelled, `cut` precedes the
    /// reservation's start, or `cut` precedes the floor — the part of a
    /// straddling reservation at or before the advanced floor already
    /// executed and cannot be reclaimed.
    pub fn truncate_at(&mut self, id: ReservationId, cut: f64) -> Result<bool, ReservationError> {
        let record = match self.reservations.get(id.0).copied().flatten() {
            Some(record) => record,
            None => return Err(ReservationError::AlreadyCancelled { id }),
        };
        if cut < record.start - 1e-9 {
            return Err(ReservationError::CutBeforeStart {
                id,
                cut,
                start: record.start,
            });
        }
        if cut < self.floor - 1e-9 {
            return Err(ReservationError::CutBeforeFloor {
                id,
                cut,
                floor: self.floor,
            });
        }
        if cut >= record.end {
            return Ok(false);
        }
        let Some(stored) = self.reservations.get_mut(id.0).and_then(Option::as_mut) else {
            return Err(ReservationError::AlreadyCancelled { id });
        };
        stored.end = cut;
        for p in record.first..record.first + record.count {
            if let Some(iv) = self.busy[p].iter_mut().find(|iv| iv.id == id) {
                iv.end = cut;
            }
            self.recompute_frontier(p);
        }
        StatsCells::bump(&self.stats.truncations, 1);
        Ok(true)
    }

    /// Whether one processor is currently online.
    pub fn is_online(&self, processor: usize) -> bool {
        !self.offline[processor]
    }

    /// Number of currently online processors.
    pub fn online_processors(&self) -> usize {
        self.offline.iter().filter(|&&off| !off).count()
    }

    /// Width of the largest run of consecutive online processors — the
    /// widest window [`ReservationTimeline::earliest_window`] can currently
    /// serve with a finite start.
    pub fn max_contiguous_online(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        for &off in &self.offline {
            if off {
                run = 0;
            } else {
                run += 1;
                best = best.max(run);
            }
        }
        best
    }

    /// Take `processor` offline as of `from` (a crash): window queries stop
    /// offering it and every reservation still using it beyond `from` is
    /// displaced — queued reservations (starting at or after `from`) are
    /// [`ReservationTimeline::cancel`]led whole, running ones (started
    /// before `from`) are [`ReservationTimeline::truncate_at`] the crash, so
    /// the executed head stays on the books.  Returns the displaced handles
    /// in busy order, for the caller to re-queue.
    ///
    /// Panics when the processor is unknown or already offline, or when
    /// `from` precedes the floor — crashes happen at the clock.  Fails with
    /// a typed [`ReservationError`] if the displacement itself hits an
    /// inconsistent record (a busy interval indexing a dead reservation), so
    /// a corrupted timeline degrades into a reported error instead of
    /// tearing the engine down.
    pub fn set_offline(
        &mut self,
        processor: usize,
        from: f64,
    ) -> Result<Vec<ReservationId>, ReservationError> {
        assert!(processor < self.processors(), "unknown processor");
        assert!(
            !self.offline[processor],
            "processor {processor} is already offline"
        );
        assert!(
            from >= self.floor - 1e-9,
            "crash at {from} is before the floor {}",
            self.floor
        );
        self.offline[processor] = true;
        let hit: Vec<ReservationId> = self.busy[processor]
            .iter()
            .filter(|iv| iv.end > from + 1e-9)
            .map(|iv| iv.id)
            .collect();
        let mut displaced = Vec::with_capacity(hit.len());
        for id in hit {
            let Some(record) = self.reservations.get(id.0).copied().flatten() else {
                return Err(ReservationError::AlreadyCancelled { id });
            };
            if record.start >= from - 1e-9 {
                // Queued at or after the crash: cancellable whole.
                self.cancel(id)?;
            } else {
                // Running across the crash: truncate, keeping the head.
                let freed = self.truncate_at(id, from)?;
                debug_assert!(freed, "the interval extends past the crash");
            }
            displaced.push(id);
        }
        Ok(displaced)
    }

    /// Bring `processor` back online as of `at` (a repair): its frontier is
    /// restored to `max(floor, at, latest busy end)` and window queries
    /// offer it again.  The repair time is remembered as the processor's
    /// availability horizon, so later cancellations cannot lower the
    /// frontier below it and backfill queries never offer holes before it.
    ///
    /// Panics when the processor is unknown or already online.
    pub fn set_online(&mut self, processor: usize, at: f64) {
        assert!(processor < self.processors(), "unknown processor");
        assert!(
            self.offline[processor],
            "processor {processor} is already online"
        );
        self.offline[processor] = false;
        if self.available_from[processor] < at {
            self.available_from[processor] = at;
        }
        self.recompute_frontier(processor);
    }

    /// Restore `frontier[p] = max(floor, availability horizon, latest busy
    /// end on p)` after a cancellation or truncation lowered the latest end.
    ///
    /// In frontier-only mode this may re-expose exactly the revoked
    /// reservation's own space (desirable: that is what a preemptive
    /// re-planner reclaims) while every hole below the remaining frontier
    /// stays hidden, preserving the paper's schedule structure.
    fn recompute_frontier(&mut self, p: usize) {
        self.frontier[p] = self.busy[p]
            .iter()
            .map(|iv| iv.end)
            .fold(self.floor.max(self.available_from[p]), f64::max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::ProcessorTimeline;
    use proptest::prelude::*;

    #[test]
    fn empty_timeline_serves_time_zero() {
        for policy in [HolePolicy::FrontierOnly, HolePolicy::Backfill] {
            let tl = ReservationTimeline::new(4, policy);
            let w = tl.earliest_window(2, 1.0, TieBreak::Leftmost);
            assert_eq!((w.first, w.start), (0, 0.0));
            assert_eq!(tl.makespan(), 0.0);
        }
    }

    #[test]
    fn offline_processors_are_skipped_by_window_queries() {
        for policy in [HolePolicy::FrontierOnly, HolePolicy::Backfill] {
            let mut tl = ReservationTimeline::new(4, policy);
            tl.set_offline(1, 0.0).unwrap();
            assert_eq!(tl.online_processors(), 3);
            assert_eq!(tl.max_contiguous_online(), 2);
            // Width 2 must land on the online run [2, 4).
            let w = tl.earliest_window(2, 1.0, TieBreak::Leftmost);
            assert_eq!((w.first, w.start), (2, 0.0));
            // Width 3 cannot avoid the offline processor: infinite start.
            let wide = tl.earliest_window(3, 1.0, TieBreak::Leftmost);
            assert!(wide.start.is_infinite());
            // Repair restores the full machine.
            tl.set_online(1, 2.5);
            assert_eq!(tl.online_processors(), 4);
            assert!(
                (tl.free_at(1) - 2.5).abs() < 1e-12,
                "repair sets the frontier"
            );
            let wide = tl.earliest_window(4, 1.0, TieBreak::Leftmost);
            assert!(wide.start.is_finite());
        }
    }

    #[test]
    fn repair_horizon_survives_revocation() {
        // Regression: `set_online(p, at)` used to store the repair time only
        // in the frontier, so the next `recompute_frontier` (any cancel on
        // that processor) dropped it, and backfill hole queries ignored it
        // entirely — placing work on a processor before its repair.
        for policy in [HolePolicy::FrontierOnly, HolePolicy::Backfill] {
            let mut tl = ReservationTimeline::new(2, policy);
            tl.set_offline(0, 0.0).unwrap();
            tl.set_online(0, 5.0);
            assert_eq!(tl.available_from(0), 5.0);
            assert!((tl.free_at(0) - 5.0).abs() < 1e-12);
            // Reserve on the repaired processor, then revoke: the frontier
            // must fall back to the repair time, not to the floor.
            let id = tl.reserve(0, 1, 5.0, 2.0);
            tl.cancel(id).unwrap();
            assert!(
                (tl.free_at(0) - 5.0).abs() < 1e-12,
                "{policy:?}: cancel dropped the repair horizon to {}",
                tl.free_at(0)
            );
            // A window using the repaired processor never starts before the
            // repair, in either query mode.
            let w = tl.earliest_window(2, 1.0, TieBreak::Leftmost);
            assert!(
                w.start >= 5.0 - 1e-12,
                "{policy:?}: window at {} precedes the repair at 5",
                w.start
            );
            // The untouched processor still serves the floor.
            let single = tl.earliest_window(1, 1.0, TieBreak::Leftmost);
            assert_eq!((single.first, single.start), (1, 0.0));
        }
    }

    #[test]
    fn crash_cancels_queued_and_truncates_running_reservations() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::FrontierOnly);
        // Running across both processors over [0, 4), queued tail on p1.
        let running = tl.reserve(0, 2, 0.0, 4.0);
        let queued = tl.reserve(1, 1, 4.0, 2.0);
        let untouched = tl.reserve(0, 1, 4.0, 1.0);
        tl.advance_to(2.0);
        let displaced = tl.set_offline(1, 2.0).unwrap();
        assert_eq!(displaced, vec![running, queued]);
        // The running reservation kept its executed head [0, 2).
        assert_eq!(tl.truncate_at(running, 2.0), Ok(false), "already cut");
        // The queued one is gone entirely.
        assert_eq!(
            tl.cancel(queued),
            Err(ReservationError::AlreadyCancelled { id: queued })
        );
        // The reservation on the surviving processor is untouched and the
        // crashed processor accepts nothing.
        assert_eq!(tl.cancel(untouched), Ok(()));
        let w = tl.earliest_window(1, 1.0, TieBreak::Leftmost);
        assert_eq!(w.first, 0);
        assert_eq!(tl.max_contiguous_online(), 1);
    }

    #[test]
    #[should_panic(expected = "offline")]
    fn reserving_an_offline_processor_panics() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        tl.set_offline(0, 0.0).unwrap();
        tl.reserve(0, 1, 0.0, 1.0);
    }

    #[test]
    fn backfill_finds_holes_below_the_frontier() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        // Processor 0 busy [0, 1) and [3, 5); the hole [1, 3) fits a 2-unit
        // task but not a 3-unit one.
        tl.reserve(0, 1, 0.0, 1.0);
        tl.reserve(0, 1, 3.0, 2.0);
        tl.reserve(1, 1, 0.0, 6.0);
        let fits = tl.earliest_window(1, 2.0, TieBreak::Leftmost);
        assert_eq!((fits.first, fits.start), (0, 1.0));
        let too_long = tl.earliest_window(1, 3.0, TieBreak::Leftmost);
        assert_eq!((too_long.first, too_long.start), (0, 5.0));
    }

    #[test]
    fn frontier_mode_never_reuses_holes() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::FrontierOnly);
        tl.reserve(0, 1, 0.0, 1.0);
        tl.reserve(0, 1, 3.0, 2.0); // leaves the hole [1, 3)
        tl.reserve(1, 1, 0.0, 6.0);
        let w = tl.earliest_window(1, 1.0, TieBreak::Leftmost);
        assert_eq!((w.first, w.start), (0, 5.0), "the hole must stay hidden");
    }

    #[test]
    fn multi_processor_holes_require_simultaneous_freedom() {
        let mut tl = ReservationTimeline::new(3, HolePolicy::Backfill);
        // Holes: p0 free [1, 4), p1 free [2, 5), p2 free [0, ∞).
        tl.reserve(0, 1, 0.0, 1.0);
        tl.reserve(0, 1, 4.0, 2.0);
        tl.reserve(1, 1, 0.0, 2.0);
        tl.reserve(1, 1, 5.0, 1.0);
        // A 2-wide 2-unit task on [0,1] fits only over [2, 4).
        let w = tl.earliest_window(2, 2.0, TieBreak::Leftmost);
        assert_eq!((w.first, w.start), (0, 2.0));
    }

    #[test]
    fn cancel_frees_the_space_and_lowers_the_frontier() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        let keep = tl.reserve(0, 2, 0.0, 1.0);
        let revoke = tl.reserve(0, 2, 1.0, 4.0);
        assert_eq!(tl.makespan(), 5.0);
        tl.cancel(revoke).unwrap();
        assert_eq!(tl.makespan(), 1.0);
        let w = tl.earliest_window(2, 3.0, TieBreak::Leftmost);
        assert_eq!(w.start, 1.0, "the revoked space is reusable");
        // The other reservation is untouched.
        assert_eq!(tl.live_reservations(), 1);
        let _ = keep;
    }

    #[test]
    fn double_cancel_is_a_typed_error() {
        let mut tl = ReservationTimeline::new(1, HolePolicy::Backfill);
        let id = tl.reserve(0, 1, 0.0, 1.0);
        tl.cancel(id).unwrap();
        assert_eq!(
            tl.cancel(id),
            Err(ReservationError::AlreadyCancelled { id })
        );
        assert_eq!(
            tl.truncate_at(id, 0.5),
            Err(ReservationError::AlreadyCancelled { id })
        );
    }

    #[test]
    fn cancelling_a_started_reservation_is_a_typed_error() {
        let mut tl = ReservationTimeline::new(1, HolePolicy::Backfill);
        let id = tl.reserve(0, 1, 0.0, 4.0);
        tl.advance_to(2.0);
        let before = tl.clone();
        assert_eq!(
            tl.cancel(id),
            Err(ReservationError::StartedBeforeFloor {
                id,
                start: 0.0,
                floor: 2.0
            })
        );
        // A failed request leaves the timeline untouched.
        assert_eq!(tl, before);
        // The running reservation *can* be preempted: its unexecuted tail is
        // revoked, the executed head stays on the books.
        tl.truncate_at(id, 2.5).unwrap();
        assert_eq!(tl.makespan(), 2.5);
    }

    #[test]
    fn truncate_frees_the_tail() {
        let mut tl = ReservationTimeline::new(1, HolePolicy::Backfill);
        let id = tl.reserve(0, 1, 0.0, 5.0);
        tl.truncate_at(id, 2.0).unwrap();
        assert_eq!(tl.makespan(), 2.0);
        let w = tl.earliest_window(1, 1.0, TieBreak::Leftmost);
        assert_eq!(w.start, 2.0);
        // Growing back via truncate is a no-op.
        tl.truncate_at(id, 4.0).unwrap();
        assert_eq!(tl.makespan(), 2.0);
    }

    #[test]
    fn truncation_cannot_rewrite_history() {
        let mut tl = ReservationTimeline::new(1, HolePolicy::Backfill);
        let id = tl.reserve(0, 1, 1.0, 5.0);
        assert_eq!(
            tl.truncate_at(id, 0.5),
            Err(ReservationError::CutBeforeStart {
                id,
                cut: 0.5,
                start: 1.0
            })
        );
        tl.advance_to(3.0);
        let before = tl.clone();
        assert_eq!(
            tl.truncate_at(id, 2.0),
            Err(ReservationError::CutBeforeFloor {
                id,
                cut: 2.0,
                floor: 3.0
            })
        );
        assert_eq!(tl, before, "failed truncation must not mutate");
        // At the floor itself the cut is legal (the preemption case).
        tl.truncate_at(id, 3.0).unwrap();
        assert_eq!(tl.makespan(), 3.0);
    }

    #[test]
    fn gc_passed_reservations_reject_revocation_without_dropping_history() {
        let mut tl = ReservationTimeline::new(1, HolePolicy::Backfill);
        let past = tl.reserve(0, 1, 0.0, 1.0);
        tl.reserve(0, 1, 1.0, 1.0);
        tl.advance_to(2.5); // both reservations fully behind the floor
        assert!(matches!(
            tl.cancel(past),
            Err(ReservationError::StartedBeforeFloor { .. })
        ));
        // Truncating a fully-past reservation at or after the floor is a
        // no-op (its end precedes the cut), never a history rewrite.
        tl.truncate_at(past, 2.5).unwrap();
        assert!(matches!(
            tl.truncate_at(past, 0.5),
            Err(ReservationError::CutBeforeFloor { .. })
        ));
    }

    #[test]
    fn advance_garbage_collects_the_past() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        for i in 0..10 {
            tl.reserve(0, 2, i as f64, 1.0);
        }
        assert_eq!(tl.live_reservations(), 10);
        tl.advance_to(8.5);
        assert_eq!(tl.live_reservations(), 2, "past intervals are collected");
        // The past is unreachable even though its intervals are gone.
        let w = tl.earliest_window(1, 0.5, TieBreak::Leftmost);
        assert!(w.start >= 8.5 - 1e-12);
    }

    #[test]
    fn overlapping_reservations_are_rejected() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        tl.reserve(0, 1, 1.0, 2.0);
        for (start, duration) in [(0.5, 1.0), (1.5, 0.5), (2.5, 1.0)] {
            let mut probe = tl.clone();
            let result = std::panic::catch_unwind(move || {
                probe.reserve(0, 1, start, duration);
            });
            assert!(result.is_err(), "overlap at [{start}, +{duration}) allowed");
        }
        // Touching intervals are fine.
        tl.reserve(0, 1, 3.0, 1.0);
        tl.reserve(0, 1, 0.0, 1.0);
    }

    proptest! {
        /// Frontier-compatible mode reproduces `ProcessorTimeline` exactly on
        /// arbitrary place/advance sequences (the offline list algorithms'
        /// usage pattern): same windows, same frontiers, same makespan.
        #[test]
        fn frontier_mode_matches_processor_timeline(
            ops in prop::collection::vec((1usize..6, 0.05f64..2.5, 0.0f64..0.5), 1..40),
            m in 5usize..9,
        ) {
            let mut legacy = ProcessorTimeline::new(m);
            let mut modern = ReservationTimeline::new(m, HolePolicy::FrontierOnly);
            let mut clock = 0.0f64;
            for (count, duration, advance) in ops {
                let count = count.min(m);
                if advance > 0.25 {
                    clock += advance;
                    legacy.advance_all_to(clock);
                    modern.advance_to(clock);
                }
                let expected = legacy.earliest_window(count, TieBreak::PaperConvention);
                let got = modern.earliest_window(count, duration, TieBreak::PaperConvention);
                prop_assert_eq!(expected.first, got.first);
                prop_assert_eq!(expected.start, got.start);
                legacy.commit(expected.first, count, expected.start, duration);
                modern.reserve(got.first, count, got.start, duration);
                for p in 0..m {
                    prop_assert!((legacy.free_at(p) - modern.free_at(p)).abs() <= 1e-12);
                }
                prop_assert_eq!(legacy.makespan(), modern.makespan());
            }
        }

        /// Revocation vs the floor-advance GC: on arbitrary
        /// place/advance/cancel/truncate sequences, `cancel` succeeds exactly
        /// on live reservations starting at or after the floor, `truncate_at`
        /// fails exactly when the cut precedes the floor or the start, no
        /// request ever panics, and a failed request leaves the timeline
        /// bit-identical.
        #[test]
        fn revocation_respects_the_advanced_floor(
            ops in prop::collection::vec((1usize..4, 0.1f64..2.0, 0.0f64..1.0, 0.0f64..6.0), 1..40),
            m in 2usize..6,
        ) {
            let mut tl = ReservationTimeline::new(m, HolePolicy::Backfill);
            let mut issued: Vec<(ReservationId, f64, bool)> = Vec::new(); // (id, start, cancelled)
            let mut clock = 0.0f64;
            for (i, (count, duration, advance, cut)) in ops.into_iter().enumerate() {
                let count = count.min(m);
                if advance > 0.6 {
                    clock += advance;
                    tl.advance_to(clock);
                }
                let (w, id) = tl.place(count, duration, TieBreak::PaperConvention);
                issued.push((id, w.start, false));
                // Attack an arbitrary earlier reservation with both requests.
                let victim = i % issued.len();
                let (vid, vstart, cancelled) = issued[victim];
                let before = tl.clone();
                match tl.cancel(vid) {
                    Ok(()) => {
                        prop_assert!(!cancelled, "double cancel accepted");
                        prop_assert!(vstart >= tl.floor() - 1e-9, "cancelled a started reservation");
                        issued[victim].2 = true;
                    }
                    Err(ReservationError::AlreadyCancelled { .. }) => {
                        prop_assert!(cancelled);
                        prop_assert_eq!(&tl, &before);
                    }
                    Err(ReservationError::StartedBeforeFloor { .. }) => {
                        prop_assert!(!cancelled && vstart < tl.floor() - 1e-9);
                        prop_assert_eq!(&tl, &before);
                    }
                    Err(other) => prop_assert!(false, "unexpected cancel error {other:?}"),
                }
                let before = tl.clone();
                match tl.truncate_at(vid, cut) {
                    Ok(_) => {
                        prop_assert!(!issued[victim].2, "truncated a cancelled reservation");
                        prop_assert!(
                            cut >= tl.floor() - 1e-9 && cut >= vstart - 1e-9,
                            "truncation rewrote history"
                        );
                    }
                    Err(ReservationError::AlreadyCancelled { .. }) => {
                        prop_assert!(issued[victim].2);
                        prop_assert_eq!(&tl, &before);
                    }
                    Err(ReservationError::CutBeforeStart { .. }) => {
                        prop_assert!(cut < vstart - 1e-9);
                        prop_assert_eq!(&tl, &before);
                    }
                    Err(ReservationError::CutBeforeFloor { .. }) => {
                        prop_assert!(cut < tl.floor() - 1e-9);
                        prop_assert_eq!(&tl, &before);
                    }
                    Err(other) => prop_assert!(false, "unexpected truncate error {other:?}"),
                }
            }
        }

        /// `set_offline` → `set_online` on a *quiet* processor (one whose
        /// crash displaces nothing) at the current clock is a perfect
        /// round-trip: the timeline — floor, frontiers, availability
        /// horizons, busy sets, live reservations, and therefore every hole
        /// query — is restored bit-identically.  Runs over arbitrary
        /// place/advance histories seeded with future repair horizons, in
        /// both query modes; the horizons make the pre-fix drift visible
        /// (`set_online` used to forget them on recompute).
        #[test]
        fn offline_online_round_trip_restores_hole_queries(
            repairs in prop::collection::vec((0usize..8, 0.5f64..4.0), 0..4),
            ops in prop::collection::vec((1usize..4, 0.1f64..2.0, 0.0f64..1.0), 1..25),
            m in 3usize..7,
        ) {
            for policy in [HolePolicy::FrontierOnly, HolePolicy::Backfill] {
                let mut tl = ReservationTimeline::new(m, policy);
                let mut clock = 0.0f64;
                // Seed future repair horizons: crash and immediately repair
                // at a time above the clock.
                for &(p, ahead) in &repairs {
                    let p = p % m;
                    tl.set_offline(p, clock).unwrap();
                    tl.set_online(p, clock + ahead);
                }
                for &(count, duration, advance) in &ops {
                    let count = count.min(m);
                    if advance > 0.6 {
                        clock += advance;
                        tl.advance_to(clock);
                    }
                    tl.place(count, duration, TieBreak::PaperConvention);

                    // Round-trip every quiet processor at the clock.
                    for p in 0..m {
                        let before = tl.clone();
                        let mut probe = tl.clone();
                        if !probe.set_offline(p, clock).unwrap().is_empty() {
                            // Not quiet: the crash displaced reservations,
                            // which legitimately mutates the timeline.
                            continue;
                        }
                        probe.set_online(p, clock);
                        prop_assert_eq!(&probe, &before,
                            "round-trip on processor {} drifted", p);
                        // Hole queries agree (implied by equality, asserted
                        // directly so a future `PartialEq` relaxation keeps
                        // the guarantee).
                        for count in 1..=m {
                            let a = before.earliest_window(count, duration, TieBreak::PaperConvention);
                            let b = probe.earliest_window(count, duration, TieBreak::PaperConvention);
                            prop_assert_eq!((a.first, a.start), (b.first, b.start));
                        }
                    }
                }
            }
        }

        /// Backfill placements never start later than frontier placements for
        /// the same request on the same state, and reservations never overlap.
        #[test]
        fn backfill_windows_are_never_later(
            ops in prop::collection::vec((1usize..5, 0.1f64..2.0), 1..30),
            m in 4usize..8,
        ) {
            let mut tl = ReservationTimeline::new(m, HolePolicy::Backfill);
            for (count, duration) in ops {
                let count = count.min(m);
                let frontier_view = earliest_frontier_view(&tl, count);
                let (w, _) = tl.place(count, duration, TieBreak::PaperConvention);
                prop_assert!(w.start <= frontier_view + 1e-9,
                    "hole window {} later than frontier window {}", w.start, frontier_view);
            }
        }
    }

    /// The frontier answer for the same state (what `FrontierOnly` would
    /// serve): recompute via the shared helper on the frontier array.
    fn earliest_frontier_view(tl: &ReservationTimeline, count: usize) -> f64 {
        let frontier: Vec<f64> = (0..tl.processors()).map(|p| tl.free_at(p)).collect();
        earliest_frontier_window(&frontier, count, TieBreak::PaperConvention).start
    }
}
