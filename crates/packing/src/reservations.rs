//! Interval-reservation timelines: revocable commitments and reusable holes.
//!
//! [`crate::timeline::ProcessorTimeline`] models the schedule structure the
//! paper's §3 list algorithms analyse: one "busy until" frontier per
//! processor, idle holes below the frontier discarded on purpose.  That model
//! cannot express the three operations a production online scheduler needs —
//! *backfilling* a new task into an idle hole below the frontier, *revoking*
//! a commitment that has not started yet (task departures, preemptive
//! re-planning of queued work), and *truncating* a reservation that finishes
//! early.
//!
//! [`ReservationTimeline`] keeps, per processor, the sorted set of busy
//! intervals (equivalently: its complement, the sorted free-interval set)
//! instead of a single frontier.  Every commitment is a first-class
//! reservation identified by a [`ReservationId`] handle that supports
//! [`ReservationTimeline::cancel`] and [`ReservationTimeline::truncate`];
//! window queries are *duration-aware* and may land inside holes.
//!
//! Two query modes are provided ([`HolePolicy`]):
//!
//! * [`HolePolicy::FrontierOnly`] reproduces the `ProcessorTimeline` answers
//!   exactly — both share one sliding-window implementation over the frontier
//!   array, so the offline list algorithms see zero behavioural drift (pinned
//!   by parity tests).  Holes are still *recorded*, which is what makes
//!   cancellation work even in frontier mode.
//! * [`HolePolicy::Backfill`] serves the earliest window that fits the
//!   requested duration anywhere at or after the current floor, first-fitting
//!   into idle holes below the frontier.
//!
//! Past intervals are garbage-collected as the floor advances
//! ([`ReservationTimeline::advance_to`]), so steady-state query cost is
//! proportional to the number of *live* reservations, not to history.

use crate::timeline::{earliest_frontier_window, TieBreak, Window};

/// Opaque handle to one reservation, returned by
/// [`ReservationTimeline::reserve`] and accepted by
/// [`ReservationTimeline::cancel`] / [`ReservationTimeline::truncate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(usize);

/// Whether window queries may reuse idle holes below the frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HolePolicy {
    /// Reproduce [`crate::timeline::ProcessorTimeline`] exactly: tasks start
    /// at or after the per-processor frontier, holes are never reused (the
    /// schedule structure analysed in the paper).
    #[default]
    FrontierOnly,
    /// Serve the earliest window whose `duration` fits, first-fitting into
    /// existing holes below the frontier.
    Backfill,
}

/// One busy interval on one processor (a slice of a reservation).
#[derive(Debug, Clone, Copy, PartialEq)]
struct BusyInterval {
    start: f64,
    end: f64,
    id: ReservationId,
}

/// The full record of a reservation, kept for cancel/truncate bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Reservation {
    first: usize,
    count: usize,
    start: f64,
    end: f64,
}

/// Per-processor sorted busy-interval sets with contiguous-window queries,
/// revocable reservations and a frontier-compatible query mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservationTimeline {
    policy: HolePolicy,
    /// Nothing may be reserved before this time (the simulation clock).
    floor: f64,
    /// Per-processor `max(floor, latest busy end)` — the frontier the
    /// [`HolePolicy::FrontierOnly`] queries run on.
    frontier: Vec<f64>,
    /// Per-processor busy intervals, sorted by start, non-overlapping.
    busy: Vec<Vec<BusyInterval>>,
    /// Reservation records by id; `None` once cancelled.
    reservations: Vec<Option<Reservation>>,
}

impl ReservationTimeline {
    /// A timeline for `processors` processors, all free at time 0.
    pub fn new(processors: usize, policy: HolePolicy) -> Self {
        assert!(processors >= 1, "need at least one processor");
        ReservationTimeline {
            policy,
            floor: 0.0,
            frontier: vec![0.0; processors],
            busy: vec![Vec::new(); processors],
            reservations: Vec::new(),
        }
    }

    /// Number of processors tracked.
    pub fn processors(&self) -> usize {
        self.frontier.len()
    }

    /// The query mode.
    pub fn policy(&self) -> HolePolicy {
        self.policy
    }

    /// The current floor (nothing may be reserved before it).
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The availability frontier of one processor: `max(floor, latest busy
    /// end)` — identical to [`crate::timeline::ProcessorTimeline::free_at`]
    /// under frontier-only use.
    pub fn free_at(&self, processor: usize) -> f64 {
        self.frontier[processor]
    }

    /// The latest busy end over all processors (the horizon after which the
    /// whole machine is free).
    pub fn makespan(&self) -> f64 {
        self.frontier.iter().cloned().fold(0.0, f64::max)
    }

    /// Number of live (not cancelled, not fully garbage-collected)
    /// reservations ending after the floor.
    pub fn live_reservations(&self) -> usize {
        self.reservations
            .iter()
            .flatten()
            .filter(|r| r.end > self.floor + 1e-12)
            .count()
    }

    /// Raise the floor (monotone).  In frontier-only mode idle frontiers are
    /// pulled up to the new floor, exactly like
    /// [`crate::timeline::ProcessorTimeline::advance_all_to`]; in backfill
    /// mode holes after the floor stay usable.  Busy intervals entirely in
    /// the past are garbage-collected.
    pub fn advance_to(&mut self, time: f64) {
        assert!(
            time >= self.floor - 1e-9,
            "floor must be monotone: floor = {}, asked {time}",
            self.floor
        );
        if time <= self.floor {
            return;
        }
        self.floor = time;
        for f in &mut self.frontier {
            if *f < time {
                *f = time;
            }
        }
        for intervals in &mut self.busy {
            intervals.retain(|iv| iv.end > time + 1e-12);
        }
    }

    /// Find the earliest start for a task needing `count` contiguous
    /// processors for `duration` time, applying the given tie-breaking rule,
    /// without committing.
    ///
    /// In [`HolePolicy::FrontierOnly`] mode the duration is irrelevant (every
    /// window extends to infinity above the frontier) and the answer is
    /// bit-identical to [`crate::timeline::ProcessorTimeline`].  In
    /// [`HolePolicy::Backfill`] mode the earliest gap of length `duration` at
    /// or after the floor is found per window position, first-fitting holes.
    pub fn earliest_window(&self, count: usize, duration: f64, tie: TieBreak) -> Window {
        match self.policy {
            HolePolicy::FrontierOnly => earliest_frontier_window(&self.frontier, count, tie),
            HolePolicy::Backfill => self.earliest_hole_window(count, duration, tie),
        }
    }

    /// Duration-aware window search over the busy-interval sets.
    ///
    /// Per window position the busy intervals of the `count` processors are
    /// swept in global start order with one cursor per processor (the
    /// per-processor lists are sorted and non-overlapping, so start order is
    /// also end order), stopping at the first gap of length `duration` —
    /// under live load the gap appears after a handful of intervals, so a
    /// query touches far fewer intervals than a full collect-and-sort.
    fn earliest_hole_window(&self, count: usize, duration: f64, tie: TieBreak) -> Window {
        let m = self.processors();
        assert!(
            count >= 1 && count <= m,
            "window of {count} processors on {m}"
        );
        assert!(duration >= 0.0, "negative duration");
        let mut best_start = f64::INFINITY;
        let mut candidates: Vec<(usize, f64)> = Vec::with_capacity(m + 1 - count);
        let mut cursors: Vec<usize> = vec![0; count];
        for first in 0..=m - count {
            for (i, p) in (first..first + count).enumerate() {
                // Skip intervals entirely in the past (ends are sorted too).
                cursors[i] = self.busy[p].partition_point(|iv| iv.end <= self.floor + 1e-12);
            }
            // Earliest gap of length `duration` at or after the floor.
            let mut start = self.floor;
            loop {
                // The unseen interval with the smallest start across the
                // window's processors.
                let mut next: Option<(usize, f64)> = None;
                for (i, p) in (first..first + count).enumerate() {
                    if let Some(iv) = self.busy[p].get(cursors[i]) {
                        if next.is_none_or(|(_, s)| iv.start < s) {
                            next = Some((i, iv.start));
                        }
                    }
                }
                match next {
                    // The gap before the next interval is too short: the
                    // candidate start moves past that interval.
                    Some((i, s)) if s < start + duration - 1e-9 => {
                        let end = self.busy[first + i][cursors[i]].end;
                        if end > start {
                            start = end;
                        }
                        cursors[i] += 1;
                    }
                    // Either no intervals remain or the gap fits.
                    _ => break,
                }
            }
            candidates.push((first, start));
            if start < best_start - 1e-12 {
                best_start = start;
            }
        }
        // The same tie-breaking convention the frontier search uses.
        let effective_tie = match tie {
            TieBreak::PaperConvention => {
                if best_start <= 1e-12 {
                    TieBreak::Leftmost
                } else {
                    TieBreak::Rightmost
                }
            }
            other => other,
        };
        let chosen = candidates
            .iter()
            .filter(|(_, s)| (*s - best_start).abs() <= 1e-12)
            .map(|&(f, _)| f);
        let first = match effective_tie {
            TieBreak::Leftmost => chosen.min().unwrap_or(0),
            TieBreak::Rightmost => chosen.max().unwrap_or(0),
            TieBreak::PaperConvention => unreachable!("resolved above"),
        };
        Window {
            first,
            count,
            start: best_start,
        }
    }

    /// Commit a reservation on processors `[first, first+count)` over
    /// `[start, start+duration)` and return its handle.
    ///
    /// Panics if the placement starts before the floor, overlaps an existing
    /// reservation, or (in frontier-only mode) starts below a processor's
    /// frontier — the same contract as
    /// [`crate::timeline::ProcessorTimeline::commit`].
    pub fn reserve(
        &mut self,
        first: usize,
        count: usize,
        start: f64,
        duration: f64,
    ) -> ReservationId {
        assert!(duration >= 0.0, "negative duration");
        assert!(
            start >= self.floor - 1e-9,
            "reservation starts at {start}, before the floor {}",
            self.floor
        );
        let end = start + duration;
        let id = ReservationId(self.reservations.len());
        for p in first..first + count {
            if self.policy == HolePolicy::FrontierOnly {
                assert!(
                    self.frontier[p] <= start + 1e-9,
                    "processor {p} is busy until {} but task starts at {start}",
                    self.frontier[p]
                );
            }
            let intervals = &mut self.busy[p];
            let pos = intervals.partition_point(|iv| iv.start < start);
            if let Some(prev) = pos.checked_sub(1).and_then(|i| intervals.get(i)) {
                assert!(
                    prev.end <= start + 1e-9,
                    "processor {p} is busy over [{}, {}) but task starts at {start}",
                    prev.start,
                    prev.end
                );
            }
            if let Some(next) = intervals.get(pos) {
                assert!(
                    next.start >= end - 1e-9,
                    "processor {p} is busy from {} but task runs until {end}",
                    next.start
                );
            }
            intervals.insert(pos, BusyInterval { start, end, id });
            if self.frontier[p] < end {
                self.frontier[p] = end;
            }
        }
        self.reservations.push(Some(Reservation {
            first,
            count,
            start,
            end,
        }));
        id
    }

    /// Convenience: find the earliest window for `(count, duration)` and
    /// reserve it.  Returns the chosen window and the reservation handle.
    pub fn place(&mut self, count: usize, duration: f64, tie: TieBreak) -> (Window, ReservationId) {
        let w = self.earliest_window(count, duration, tie);
        let id = self.reserve(w.first, w.count, w.start, duration);
        (w, id)
    }

    /// Revoke a reservation that has not started yet, freeing its intervals.
    ///
    /// Panics if the handle was already cancelled or the reservation started
    /// at or before the floor (a running or finished task cannot be revoked —
    /// the execution model is non-preemptive).
    pub fn cancel(&mut self, id: ReservationId) {
        let record = self.reservations[id.0]
            .take()
            .expect("reservation already cancelled");
        assert!(
            record.start >= self.floor - 1e-9,
            "reservation started at {}, before the floor {} — running tasks cannot be revoked",
            record.start,
            self.floor
        );
        for p in record.first..record.first + record.count {
            self.busy[p].retain(|iv| iv.id != id);
            self.recompute_frontier(p);
        }
    }

    /// Shrink a reservation's end to `new_end` (e.g. a task that finished
    /// early), freeing the tail `[new_end, end)`.
    ///
    /// Panics if the handle was cancelled, `new_end` precedes the
    /// reservation's start, or `new_end` precedes the floor.
    pub fn truncate(&mut self, id: ReservationId, new_end: f64) {
        let record = self.reservations[id.0]
            .as_mut()
            .expect("reservation already cancelled");
        assert!(
            new_end >= record.start - 1e-9,
            "truncation to {new_end} precedes the reservation start {}",
            record.start
        );
        assert!(
            new_end >= self.floor - 1e-9,
            "truncation to {new_end} rewrites the past (floor {})",
            self.floor
        );
        if new_end >= record.end {
            return;
        }
        record.end = new_end;
        let (first, count) = (record.first, record.count);
        for p in first..first + count {
            if let Some(iv) = self.busy[p].iter_mut().find(|iv| iv.id == id) {
                iv.end = new_end;
            }
            self.recompute_frontier(p);
        }
    }

    /// Restore `frontier[p] = max(floor, latest busy end on p)` after a
    /// cancellation or truncation lowered the latest end.
    ///
    /// In frontier-only mode this may re-expose exactly the revoked
    /// reservation's own space (desirable: that is what a preemptive
    /// re-planner reclaims) while every hole below the remaining frontier
    /// stays hidden, preserving the paper's schedule structure.
    fn recompute_frontier(&mut self, p: usize) {
        self.frontier[p] = self.busy[p]
            .iter()
            .map(|iv| iv.end)
            .fold(self.floor, f64::max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::ProcessorTimeline;
    use proptest::prelude::*;

    #[test]
    fn empty_timeline_serves_time_zero() {
        for policy in [HolePolicy::FrontierOnly, HolePolicy::Backfill] {
            let tl = ReservationTimeline::new(4, policy);
            let w = tl.earliest_window(2, 1.0, TieBreak::Leftmost);
            assert_eq!((w.first, w.start), (0, 0.0));
            assert_eq!(tl.makespan(), 0.0);
        }
    }

    #[test]
    fn backfill_finds_holes_below_the_frontier() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        // Processor 0 busy [0, 1) and [3, 5); the hole [1, 3) fits a 2-unit
        // task but not a 3-unit one.
        tl.reserve(0, 1, 0.0, 1.0);
        tl.reserve(0, 1, 3.0, 2.0);
        tl.reserve(1, 1, 0.0, 6.0);
        let fits = tl.earliest_window(1, 2.0, TieBreak::Leftmost);
        assert_eq!((fits.first, fits.start), (0, 1.0));
        let too_long = tl.earliest_window(1, 3.0, TieBreak::Leftmost);
        assert_eq!((too_long.first, too_long.start), (0, 5.0));
    }

    #[test]
    fn frontier_mode_never_reuses_holes() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::FrontierOnly);
        tl.reserve(0, 1, 0.0, 1.0);
        tl.reserve(0, 1, 3.0, 2.0); // leaves the hole [1, 3)
        tl.reserve(1, 1, 0.0, 6.0);
        let w = tl.earliest_window(1, 1.0, TieBreak::Leftmost);
        assert_eq!((w.first, w.start), (0, 5.0), "the hole must stay hidden");
    }

    #[test]
    fn multi_processor_holes_require_simultaneous_freedom() {
        let mut tl = ReservationTimeline::new(3, HolePolicy::Backfill);
        // Holes: p0 free [1, 4), p1 free [2, 5), p2 free [0, ∞).
        tl.reserve(0, 1, 0.0, 1.0);
        tl.reserve(0, 1, 4.0, 2.0);
        tl.reserve(1, 1, 0.0, 2.0);
        tl.reserve(1, 1, 5.0, 1.0);
        // A 2-wide 2-unit task on [0,1] fits only over [2, 4).
        let w = tl.earliest_window(2, 2.0, TieBreak::Leftmost);
        assert_eq!((w.first, w.start), (0, 2.0));
    }

    #[test]
    fn cancel_frees_the_space_and_lowers_the_frontier() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        let keep = tl.reserve(0, 2, 0.0, 1.0);
        let revoke = tl.reserve(0, 2, 1.0, 4.0);
        assert_eq!(tl.makespan(), 5.0);
        tl.cancel(revoke);
        assert_eq!(tl.makespan(), 1.0);
        let w = tl.earliest_window(2, 3.0, TieBreak::Leftmost);
        assert_eq!(w.start, 1.0, "the revoked space is reusable");
        // The other reservation is untouched.
        assert_eq!(tl.live_reservations(), 1);
        let _ = keep;
    }

    #[test]
    #[should_panic(expected = "already cancelled")]
    fn double_cancel_is_rejected() {
        let mut tl = ReservationTimeline::new(1, HolePolicy::Backfill);
        let id = tl.reserve(0, 1, 0.0, 1.0);
        tl.cancel(id);
        tl.cancel(id);
    }

    #[test]
    #[should_panic(expected = "running tasks cannot be revoked")]
    fn cancelling_a_started_reservation_is_rejected() {
        let mut tl = ReservationTimeline::new(1, HolePolicy::Backfill);
        let id = tl.reserve(0, 1, 0.0, 4.0);
        tl.advance_to(2.0);
        tl.cancel(id);
    }

    #[test]
    fn truncate_frees_the_tail() {
        let mut tl = ReservationTimeline::new(1, HolePolicy::Backfill);
        let id = tl.reserve(0, 1, 0.0, 5.0);
        tl.truncate(id, 2.0);
        assert_eq!(tl.makespan(), 2.0);
        let w = tl.earliest_window(1, 1.0, TieBreak::Leftmost);
        assert_eq!(w.start, 2.0);
        // Growing back via truncate is a no-op.
        tl.truncate(id, 4.0);
        assert_eq!(tl.makespan(), 2.0);
    }

    #[test]
    fn advance_garbage_collects_the_past() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        for i in 0..10 {
            tl.reserve(0, 2, i as f64, 1.0);
        }
        assert_eq!(tl.live_reservations(), 10);
        tl.advance_to(8.5);
        assert_eq!(tl.live_reservations(), 2, "past intervals are collected");
        // The past is unreachable even though its intervals are gone.
        let w = tl.earliest_window(1, 0.5, TieBreak::Leftmost);
        assert!(w.start >= 8.5 - 1e-12);
    }

    #[test]
    fn overlapping_reservations_are_rejected() {
        let mut tl = ReservationTimeline::new(2, HolePolicy::Backfill);
        tl.reserve(0, 1, 1.0, 2.0);
        for (start, duration) in [(0.5, 1.0), (1.5, 0.5), (2.5, 1.0)] {
            let mut probe = tl.clone();
            let result = std::panic::catch_unwind(move || {
                probe.reserve(0, 1, start, duration);
            });
            assert!(result.is_err(), "overlap at [{start}, +{duration}) allowed");
        }
        // Touching intervals are fine.
        tl.reserve(0, 1, 3.0, 1.0);
        tl.reserve(0, 1, 0.0, 1.0);
    }

    proptest! {
        /// Frontier-compatible mode reproduces `ProcessorTimeline` exactly on
        /// arbitrary place/advance sequences (the offline list algorithms'
        /// usage pattern): same windows, same frontiers, same makespan.
        #[test]
        fn frontier_mode_matches_processor_timeline(
            ops in prop::collection::vec((1usize..6, 0.05f64..2.5, 0.0f64..0.5), 1..40),
            m in 5usize..9,
        ) {
            let mut legacy = ProcessorTimeline::new(m);
            let mut modern = ReservationTimeline::new(m, HolePolicy::FrontierOnly);
            let mut clock = 0.0f64;
            for (count, duration, advance) in ops {
                let count = count.min(m);
                if advance > 0.25 {
                    clock += advance;
                    legacy.advance_all_to(clock);
                    modern.advance_to(clock);
                }
                let expected = legacy.earliest_window(count, TieBreak::PaperConvention);
                let got = modern.earliest_window(count, duration, TieBreak::PaperConvention);
                prop_assert_eq!(expected.first, got.first);
                prop_assert_eq!(expected.start, got.start);
                legacy.commit(expected.first, count, expected.start, duration);
                modern.reserve(got.first, count, got.start, duration);
                for p in 0..m {
                    prop_assert!((legacy.free_at(p) - modern.free_at(p)).abs() <= 1e-12);
                }
                prop_assert_eq!(legacy.makespan(), modern.makespan());
            }
        }

        /// Backfill placements never start later than frontier placements for
        /// the same request on the same state, and reservations never overlap.
        #[test]
        fn backfill_windows_are_never_later(
            ops in prop::collection::vec((1usize..5, 0.1f64..2.0), 1..30),
            m in 4usize..8,
        ) {
            let mut tl = ReservationTimeline::new(m, HolePolicy::Backfill);
            for (count, duration) in ops {
                let count = count.min(m);
                let frontier_view = earliest_frontier_view(&tl, count);
                let (w, _) = tl.place(count, duration, TieBreak::PaperConvention);
                prop_assert!(w.start <= frontier_view + 1e-9,
                    "hole window {} later than frontier window {}", w.start, frontier_view);
            }
        }
    }

    /// The frontier answer for the same state (what `FrontierOnly` would
    /// serve): recompute via the shared helper on the frontier array.
    fn earliest_frontier_view(tl: &ReservationTimeline, count: usize) -> f64 {
        let frontier: Vec<f64> = (0..tl.processors()).map(|p| tl.free_at(p)).collect();
        earliest_frontier_window(&frontier, count, TieBreak::PaperConvention).start
    }
}
