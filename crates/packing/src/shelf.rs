//! Shelves: horizontal bands of the processors × time rectangle.
//!
//! The two-shelf construction of §4 of the paper fixes the schedule structure
//! to two consecutive bands: a first shelf of length `ω` starting at time 0
//! and a second shelf of length `λ·ω` starting at time `ω`.  Inside one shelf,
//! parallel tasks are simply laid out side by side (each consumes a contiguous
//! block of processors for the whole shelf slot), and small sequential tasks
//! are stacked on individual processors with a one-dimensional packing
//! algorithm (see [`crate::bin_packing`]).
//!
//! A [`Shelf`] only tracks the side-by-side width allocation; stacking within
//! a column is the responsibility of the caller because it needs task-level
//! information.

/// A shelf: a band `[start, start + length)` across `width` processors, with a
/// left-to-right cursor of already-consumed processors.
#[derive(Debug, Clone, PartialEq)]
pub struct Shelf {
    start: f64,
    length: f64,
    width: usize,
    cursor: usize,
}

/// A contiguous block of processors handed out by [`Shelf::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShelfSlot {
    /// First processor index of the block (relative to the machine, i.e. the
    /// shelf spans processors `0..width`).
    pub first: usize,
    /// Number of processors in the block.
    pub count: usize,
}

impl Shelf {
    /// Create a shelf starting at `start`, lasting `length`, across `width`
    /// processors.
    pub fn new(start: f64, length: f64, width: usize) -> Self {
        assert!(width >= 1, "shelf must span at least one processor");
        assert!(
            length > 0.0 && length.is_finite(),
            "shelf length must be positive"
        );
        assert!(
            start >= 0.0 && start.is_finite(),
            "shelf start must be non-negative"
        );
        Shelf {
            start,
            length,
            width,
            cursor: 0,
        }
    }

    /// Start time of the shelf.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Duration of the shelf slot.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Total number of processors spanned by the shelf.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of processors still available.
    pub fn remaining(&self) -> usize {
        self.width - self.cursor
    }

    /// Number of processors already handed out.
    pub fn used(&self) -> usize {
        self.cursor
    }

    /// Whether a task of the given duration fits length-wise in the shelf.
    pub fn fits_duration(&self, duration: f64) -> bool {
        duration <= self.length + 1e-9
    }

    /// Try to allocate a block of `count` processors side by side.
    ///
    /// Returns `None` when fewer than `count` processors remain.
    pub fn place(&mut self, count: usize) -> Option<ShelfSlot> {
        if count == 0 || count > self.remaining() {
            return None;
        }
        let slot = ShelfSlot {
            first: self.cursor,
            count,
        };
        self.cursor += count;
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_are_contiguous_and_disjoint() {
        let mut shelf = Shelf::new(0.0, 1.0, 8);
        let a = shelf.place(3).unwrap();
        let b = shelf.place(4).unwrap();
        assert_eq!((a.first, a.count), (0, 3));
        assert_eq!((b.first, b.count), (3, 4));
        assert_eq!(shelf.remaining(), 1);
    }

    #[test]
    fn over_allocation_is_rejected() {
        let mut shelf = Shelf::new(1.0, 0.5, 4);
        assert!(shelf.place(5).is_none());
        assert!(shelf.place(4).is_some());
        assert!(shelf.place(1).is_none());
        assert_eq!(shelf.used(), 4);
    }

    #[test]
    fn zero_width_request_rejected() {
        let mut shelf = Shelf::new(0.0, 1.0, 4);
        assert!(shelf.place(0).is_none());
    }

    #[test]
    fn duration_fit_check() {
        let shelf = Shelf::new(0.0, 0.75, 2);
        assert!(shelf.fits_duration(0.75));
        assert!(shelf.fits_duration(0.5));
        assert!(!shelf.fits_duration(0.8));
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn invalid_length_panics() {
        Shelf::new(0.0, 0.0, 3);
    }
}
