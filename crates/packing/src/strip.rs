//! Level-based strip packing (NFDH / FFDH).
//!
//! The baselines of the paper (Turek–Wolf–Yu and Ludwig's refinement) solve
//! the non-malleable scheduling problem as a two-dimensional strip packing:
//! rectangles of integer width (processors) and real height (time) must be
//! packed without overlap into a strip of width `m`, minimising the total
//! height (the makespan).  Ludwig uses Steinberg's algorithm, which has an
//! *absolute* performance guarantee of 2 but produces non-shelf layouts that
//! are hard to reproduce faithfully from the published description.  We use
//! the classical level algorithms of Coffman, Garey, Johnson and Tarjan
//! instead:
//!
//! * **NFDH** (Next Fit Decreasing Height): sort by decreasing height, fill a
//!   level greedily left to right, open a new level on top when the next
//!   rectangle does not fit.  Guarantee `2·OPT + h_max`.
//! * **FFDH** (First Fit Decreasing Height): same, but each rectangle goes to
//!   the *first* (lowest) level with enough remaining width.  Guarantee
//!   `1.7·OPT + h_max`.
//!
//! Both keep every rectangle on contiguous columns, so the schedules they
//! induce are contiguous in the sense of the paper.  The substitution of
//! Steinberg by FFDH is recorded in `DESIGN.md`; the benchmark suite verifies
//! that the resulting two-phase baseline stays within a factor 2 of the lower
//! bound on the monotone instances it is evaluated on.

use crate::rect::Rect;

/// Where a rectangle ended up in the strip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index of the rectangle in the input slice.
    pub index: usize,
    /// First column (processor) occupied.
    pub x: usize,
    /// Bottom coordinate (start time).
    pub y: f64,
}

/// Result of a strip packing run.
#[derive(Debug, Clone, PartialEq)]
pub struct StripPacking {
    /// One placement per input rectangle (same order as the input).
    pub placements: Vec<Placement>,
    /// Total height used (the makespan of the induced schedule).
    pub height: f64,
    /// Number of levels (shelves) opened.
    pub levels: usize,
}

impl StripPacking {
    /// Verify that no two rectangles overlap and that all fit in the strip.
    pub fn is_valid(&self, rects: &[Rect], width: usize) -> bool {
        if self.placements.len() != rects.len() {
            return false;
        }
        for p in &self.placements {
            let r = rects[p.index];
            if p.x + r.width > width {
                return false;
            }
            if p.y + r.height > self.height + 1e-9 {
                return false;
            }
        }
        for (i, a) in self.placements.iter().enumerate() {
            let ra = rects[a.index];
            for b in self.placements.iter().skip(i + 1) {
                let rb = rects[b.index];
                let x_overlap = a.x < b.x + rb.width && b.x < a.x + ra.width;
                let y_overlap = a.y < b.y + rb.height - 1e-9 && b.y < a.y + ra.height - 1e-9;
                if x_overlap && y_overlap {
                    return false;
                }
            }
        }
        true
    }
}

#[derive(Debug)]
struct Level {
    y: f64,
    height: f64,
    used_width: usize,
}

fn sort_by_decreasing_height(rects: &[Rect]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..rects.len()).collect();
    order.sort_by(|&a, &b| {
        rects[b]
            .height
            .partial_cmp(&rects[a].height)
            .unwrap()
            .then(rects[b].width.cmp(&rects[a].width))
    });
    order
}

fn pack_levels(rects: &[Rect], width: usize, first_fit: bool) -> StripPacking {
    assert!(width >= 1, "strip width must be at least 1");
    for r in rects {
        assert!(
            r.width <= width,
            "rectangle of width {} exceeds strip width {}",
            r.width,
            width
        );
    }
    let order = sort_by_decreasing_height(rects);
    let mut levels: Vec<Level> = Vec::new();
    let mut placements = vec![
        Placement {
            index: 0,
            x: 0,
            y: 0.0
        };
        rects.len()
    ];

    for &idx in &order {
        let r = rects[idx];
        let candidate = if first_fit {
            levels
                .iter_mut()
                .position(|lv| lv.used_width + r.width <= width)
        } else {
            // Next fit: only the topmost level may receive the rectangle.
            levels
                .len()
                .checked_sub(1)
                .filter(|&last| levels[last].used_width + r.width <= width)
        };
        let level_index = match candidate {
            Some(i) => i,
            None => {
                let y = levels.last().map_or(0.0, |lv| lv.y + lv.height);
                levels.push(Level {
                    y,
                    height: r.height,
                    used_width: 0,
                });
                levels.len() - 1
            }
        };
        let lv = &mut levels[level_index];
        placements[idx] = Placement {
            index: idx,
            x: lv.used_width,
            y: lv.y,
        };
        lv.used_width += r.width;
        // Heights are non-increasing in placement order, so the level height
        // set at creation is always an upper bound; keep it for safety.
        if r.height > lv.height {
            lv.height = r.height;
        }
    }

    let height = levels.last().map_or(0.0, |lv| lv.y + lv.height);
    StripPacking {
        placements,
        height,
        levels: levels.len(),
    }
}

/// Next Fit Decreasing Height strip packing.
pub fn nfdh(rects: &[Rect], width: usize) -> StripPacking {
    pack_levels(rects, width, false)
}

/// First Fit Decreasing Height strip packing.
pub fn ffdh(rects: &[Rect], width: usize) -> StripPacking {
    pack_levels(rects, width, true)
}

/// The trivial area / max-height lower bound on the optimal strip height.
pub fn strip_lower_bound(rects: &[Rect], width: usize) -> f64 {
    let area: f64 = rects.iter().map(Rect::area).sum();
    let tallest = rects.iter().map(|r| r.height).fold(0.0, f64::max);
    (area / width as f64).max(tallest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rects(raw: &[(usize, f64)]) -> Vec<Rect> {
        raw.iter().map(|&(w, h)| Rect::new(w, h)).collect()
    }

    #[test]
    fn empty_input() {
        let packed = ffdh(&[], 4);
        assert_eq!(packed.height, 0.0);
        assert_eq!(packed.levels, 0);
        assert!(packed.is_valid(&[], 4));
    }

    #[test]
    fn single_level_when_everything_fits() {
        let rs = rects(&[(2, 1.0), (3, 0.9), (3, 0.5)]);
        let packed = ffdh(&rs, 8);
        assert_eq!(packed.levels, 1);
        assert!((packed.height - 1.0).abs() < 1e-9);
        assert!(packed.is_valid(&rs, 8));
    }

    #[test]
    fn ffdh_backfills_lower_levels() {
        // Heights: 1.0 (w4), 0.9 (w3), 0.8 (w4), 0.2 (w1).
        // Level 0 holds the first two (width 7); the third opens level 1.
        // FFDH puts the 0.2 rect back on level 0 (width 7+1 <= 8); NFDH cannot.
        let rs = rects(&[(4, 1.0), (3, 0.9), (4, 0.8), (1, 0.2)]);
        let ff = ffdh(&rs, 8);
        let nf = nfdh(&rs, 8);
        assert_eq!(ff.levels, 2);
        assert_eq!(nf.levels, 2);
        assert!(ff.is_valid(&rs, 8));
        assert!(nf.is_valid(&rs, 8));
        // In FFDH the small rect sits at y = 0.0; in NFDH at y = 1.0.
        let small_ff = ff.placements[3];
        let small_nf = nf.placements[3];
        assert_eq!(small_ff.y, 0.0);
        assert!((small_nf.y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heights_accumulate_over_levels() {
        let rs = rects(&[(3, 1.0), (3, 0.8), (3, 0.6)]);
        let packed = nfdh(&rs, 4);
        assert_eq!(packed.levels, 3);
        assert!((packed.height - 2.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds strip width")]
    fn too_wide_rectangle_panics() {
        ffdh(&rects(&[(5, 1.0)]), 4);
    }

    #[test]
    fn full_width_rectangles_stack() {
        let rs = rects(&[(4, 0.5), (4, 0.5), (4, 0.5)]);
        let packed = ffdh(&rs, 4);
        assert_eq!(packed.levels, 3);
        assert!((packed.height - 1.5).abs() < 1e-9);
        assert!(packed.is_valid(&rs, 4));
    }

    proptest! {
        /// Both heuristics always produce overlap-free packings and respect
        /// the classical level-algorithm guarantees against the area bound.
        #[test]
        fn level_packings_are_valid_and_bounded(
            raw in prop::collection::vec((1usize..8, 0.05f64..1.0), 1..40),
        ) {
            let width = 8;
            let rs = rects(&raw);
            let lb = strip_lower_bound(&rs, width);
            let h_max = rs.iter().map(|r| r.height).fold(0.0, f64::max);
            let ff = ffdh(&rs, width);
            let nf = nfdh(&rs, width);
            prop_assert!(ff.is_valid(&rs, width));
            prop_assert!(nf.is_valid(&rs, width));
            // CGJT bounds: FFDH <= 1.7 OPT + h_max, NFDH <= 2 OPT + h_max,
            // and OPT >= lb.
            prop_assert!(ff.height <= 1.7 * lb.max(1e-12) + h_max + 1e-6
                || ff.height <= 2.0 * lb + h_max + 1e-6);
            prop_assert!(nf.height <= 2.0 * lb + h_max + 1e-6);
            // FFDH never opens more levels than NFDH.
            prop_assert!(ff.levels <= nf.levels);
        }

        /// Packing height is at least the lower bound (sanity of the bound).
        #[test]
        fn height_at_least_lower_bound(
            raw in prop::collection::vec((1usize..6, 0.05f64..1.0), 1..30),
        ) {
            let width = 6;
            let rs = rects(&raw);
            let lb = strip_lower_bound(&rs, width);
            let ff = ffdh(&rs, width);
            prop_assert!(ff.height >= lb - 1e-9);
        }
    }
}
