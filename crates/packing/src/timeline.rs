//! Contiguous processor timelines for list scheduling.
//!
//! The list algorithms of §3 of the paper build *contiguous, non-preemptive*
//! schedules: a task allotted `p` processors occupies `p` processors with
//! consecutive indices for its whole execution.  Each processor therefore has
//! a single "busy until" frontier, and a task is started at the earliest
//! instant at which a window of `p` consecutive processors are all free.
//! Idle holes created below the frontier are never reused — this matches the
//! schedule structure analysed in the paper (the staircase idle areas of its
//! Figure 2 are lost on purpose, and the analysis charges for them).
//!
//! Ties between candidate windows are broken with the paper's convention
//! (§3.2): a task starting at time 0 goes to the leftmost window, a task
//! starting later goes to the rightmost one.  This convention is what makes
//! the two-level structure of the canonical list schedule contiguous.

/// Per-processor availability frontier supporting contiguous window queries.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorTimeline {
    busy_until: Vec<f64>,
}

/// Tie-breaking rule among windows that become free at the same earliest time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Choose the window with the smallest first processor index.
    Leftmost,
    /// Choose the window with the largest first processor index.
    Rightmost,
    /// The paper's rule: leftmost when the start time is 0, rightmost otherwise.
    PaperConvention,
}

/// A placement decision returned by [`ProcessorTimeline::earliest_window`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Index of the first processor of the window.
    pub first: usize,
    /// Number of processors in the window.
    pub count: usize,
    /// Earliest time at which every processor of the window is free.
    pub start: f64,
}

/// Sliding-window search for the earliest contiguous window over a frontier
/// array, shared by [`ProcessorTimeline`] and the frontier-compatible mode of
/// [`crate::reservations::ReservationTimeline`] so the two can never drift.
///
/// Complexity `O(m)` using a sliding-window maximum (monotone deque).
pub(crate) fn earliest_frontier_window(busy_until: &[f64], count: usize, tie: TieBreak) -> Window {
    let m = busy_until.len();
    assert!(
        count >= 1 && count <= m,
        "window of {count} processors on {m}"
    );
    // Sliding window maximum of busy_until over windows of size `count`.
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut best_start = f64::INFINITY;
    let mut best_first = 0usize;
    let mut candidates: Vec<(usize, f64)> = Vec::new();
    for i in 0..m {
        while let Some(&back) = deque.back() {
            if busy_until[back] <= busy_until[i] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        if i + 1 >= count {
            let first = i + 1 - count;
            while let Some(&front) = deque.front() {
                if front < first {
                    deque.pop_front();
                } else {
                    break;
                }
            }
            let start = busy_until[*deque.front().unwrap()];
            candidates.push((first, start));
            if start < best_start - 1e-12 {
                best_start = start;
                best_first = first;
            }
        }
    }
    // Apply the tie-break among windows whose start equals the best start.
    let effective_tie = match tie {
        TieBreak::PaperConvention => {
            if best_start <= 1e-12 {
                TieBreak::Leftmost
            } else {
                TieBreak::Rightmost
            }
        }
        other => other,
    };
    let chosen = candidates
        .iter()
        .filter(|(_, s)| (*s - best_start).abs() <= 1e-12)
        .map(|&(f, _)| f);
    let first = match effective_tie {
        TieBreak::Leftmost => chosen.min().unwrap_or(best_first),
        TieBreak::Rightmost => chosen.max().unwrap_or(best_first),
        TieBreak::PaperConvention => unreachable!("resolved above"),
    };
    Window {
        first,
        count,
        start: best_start,
    }
}

impl ProcessorTimeline {
    /// A timeline for `processors` processors, all free at time 0.
    pub fn new(processors: usize) -> Self {
        assert!(processors >= 1, "need at least one processor");
        ProcessorTimeline {
            busy_until: vec![0.0; processors],
        }
    }

    /// Number of processors tracked.
    pub fn processors(&self) -> usize {
        self.busy_until.len()
    }

    /// The availability frontier of one processor.
    pub fn free_at(&self, processor: usize) -> f64 {
        self.busy_until[processor]
    }

    /// The makespan of everything committed so far.
    pub fn makespan(&self) -> f64 {
        self.busy_until.iter().cloned().fold(0.0, f64::max)
    }

    /// Total committed busy area (the sum of the frontiers), counting idle
    /// holes below the frontier as busy — which is exactly the accounting the
    /// paper's surface arguments use.
    pub fn frontier_area(&self) -> f64 {
        self.busy_until.iter().sum()
    }

    /// Find the earliest start for a task needing `count` contiguous
    /// processors, applying the given tie-breaking rule, without committing.
    ///
    /// Complexity `O(m)` using a sliding-window maximum over the frontier
    /// (monotone deque).
    pub fn earliest_window(&self, count: usize, tie: TieBreak) -> Window {
        earliest_frontier_window(&self.busy_until, count, tie)
    }

    /// Commit a task to the processors `[first, first+count)` starting at
    /// `start` for `duration` time units.
    ///
    /// Panics if any processor of the window is still busy after `start`
    /// (within a small tolerance), because that would create an overlap.
    pub fn commit(&mut self, first: usize, count: usize, start: f64, duration: f64) {
        assert!(duration >= 0.0, "negative duration");
        for p in first..first + count {
            assert!(
                self.busy_until[p] <= start + 1e-9,
                "processor {p} is busy until {} but task starts at {start}",
                self.busy_until[p]
            );
            self.busy_until[p] = start + duration;
        }
    }

    /// Convenience: find the earliest window and commit a task there.
    /// Returns the chosen window.
    pub fn place(&mut self, count: usize, duration: f64, tie: TieBreak) -> Window {
        let w = self.earliest_window(count, tie);
        self.commit(w.first, w.count, w.start, duration);
        w
    }

    /// Force all processors to be busy until at least `time` (used to model a
    /// shelf boundary, e.g. the start of the second shelf in the two-shelf
    /// construction).
    pub fn advance_all_to(&mut self, time: f64) {
        for b in &mut self.busy_until {
            if *b < time {
                *b = time;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_timeline_starts_at_zero() {
        let tl = ProcessorTimeline::new(4);
        let w = tl.earliest_window(2, TieBreak::Leftmost);
        assert_eq!(w.first, 0);
        assert_eq!(w.start, 0.0);
        assert_eq!(tl.makespan(), 0.0);
    }

    #[test]
    fn leftmost_tie_break_at_time_zero() {
        let tl = ProcessorTimeline::new(6);
        let w = tl.earliest_window(3, TieBreak::PaperConvention);
        assert_eq!(w.first, 0);
    }

    #[test]
    fn rightmost_tie_break_after_time_zero() {
        let mut tl = ProcessorTimeline::new(4);
        tl.commit(0, 4, 0.0, 1.0); // everything busy until 1.0
        let w = tl.earliest_window(2, TieBreak::PaperConvention);
        assert_eq!(w.start, 1.0);
        assert_eq!(w.first, 2, "rightmost window of width 2 on 4 processors");
    }

    #[test]
    fn window_picks_minimal_start() {
        let mut tl = ProcessorTimeline::new(5);
        tl.commit(0, 2, 0.0, 3.0);
        tl.commit(2, 2, 0.0, 1.0);
        // processor 4 free at 0, processors 2-3 free at 1, 0-1 free at 3.
        let w = tl.earliest_window(2, TieBreak::Leftmost);
        assert_eq!(w.start, 1.0);
        // The best window of width 2 that frees earliest is [3,4] at time 1.0
        // (processor 3 busy till 1.0, processor 4 free) — check start only,
        // window position must have start 1.0.
        assert!(w.first == 2 || w.first == 3);
    }

    #[test]
    fn commit_rejects_overlap() {
        let mut tl = ProcessorTimeline::new(2);
        tl.commit(0, 1, 0.0, 2.0);
        let result = std::panic::catch_unwind(move || {
            tl.commit(0, 1, 1.0, 1.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn place_sequence_builds_two_levels() {
        // Mirrors the paper's Fig. 1/2: wide tasks first, then stacking.
        let mut tl = ProcessorTimeline::new(4);
        let w1 = tl.place(2, 1.0, TieBreak::PaperConvention);
        let w2 = tl.place(2, 0.8, TieBreak::PaperConvention);
        assert_eq!((w1.first, w1.start), (0, 0.0));
        assert_eq!((w2.first, w2.start), (2, 0.0));
        let w3 = tl.place(3, 0.5, TieBreak::PaperConvention);
        // Must wait for the slower of the first-level tasks it overlaps.
        assert!(w3.start >= 0.8 - 1e-12);
        assert!(tl.makespan() >= w3.start + 0.5 - 1e-12);
    }

    #[test]
    fn advance_all_to_sets_floor() {
        let mut tl = ProcessorTimeline::new(3);
        tl.commit(0, 1, 0.0, 2.0);
        tl.advance_all_to(1.5);
        assert_eq!(tl.free_at(0), 2.0);
        assert_eq!(tl.free_at(1), 1.5);
        assert_eq!(tl.free_at(2), 1.5);
    }

    #[test]
    fn frontier_area_counts_idle_holes() {
        let mut tl = ProcessorTimeline::new(2);
        tl.commit(0, 1, 0.0, 2.0);
        tl.place(2, 1.0, TieBreak::Leftmost); // starts at 2.0 on both
        assert!((tl.frontier_area() - 6.0).abs() < 1e-9);
    }

    proptest! {
        /// Random placement sequences never violate the frontier invariant and
        /// the makespan equals the max frontier.
        #[test]
        fn random_placements_consistent(
            tasks in prop::collection::vec((1usize..5, 0.1f64..2.0), 1..30),
            m in 5usize..10,
        ) {
            let mut tl = ProcessorTimeline::new(m);
            let mut committed = 0.0f64;
            for (p, d) in tasks {
                let w = tl.place(p.min(m), d, TieBreak::PaperConvention);
                committed = committed.max(w.start + d);
            }
            prop_assert!((tl.makespan() - committed).abs() < 1e-9);
            prop_assert!(tl.frontier_area() <= m as f64 * tl.makespan() + 1e-9);
        }

        /// The earliest window is never later than the time when all
        /// processors are free (the trivially feasible start).
        #[test]
        fn earliest_window_not_after_global_free(
            tasks in prop::collection::vec((1usize..4, 0.1f64..1.0), 0..15),
            count in 1usize..6,
        ) {
            let m = 6;
            let mut tl = ProcessorTimeline::new(m);
            for (p, d) in tasks {
                tl.place(p, d, TieBreak::Leftmost);
            }
            let w = tl.earliest_window(count.min(m), TieBreak::Leftmost);
            prop_assert!(w.start <= tl.makespan() + 1e-9);
        }
    }
}
