//! Lower bounds for precedence-constrained malleable scheduling.
//!
//! Two classical bounds apply and are the ones the Prasanna–Musicus
//! continuous analysis balances:
//!
//! * the **area bound** `Σ_j t_j(1) / m` (work cannot be processed faster
//!   than `m` units per time unit, and the monotone assumption makes the
//!   sequential work minimal);
//! * the **critical-path bound**: along any precedence chain the execution
//!   times add up, and each task needs at least its fastest execution time
//!   `t_j(m)` — so the heaviest chain, measured in fastest times, bounds the
//!   makespan from below.

use crate::graph::PrecedenceInstance;

/// The work/area bound `Σ_j t_j(1) / m`.
pub fn area_bound(instance: &PrecedenceInstance) -> f64 {
    let total: f64 = instance
        .graph
        .tasks()
        .iter()
        .map(|t| t.profile.sequential_time())
        .sum();
    total / instance.processors as f64
}

/// The critical-path bound: the longest chain when every task runs at its
/// minimal achievable time (at most `m` processors).
pub fn critical_path_bound(instance: &PrecedenceInstance) -> f64 {
    let graph = &instance.graph;
    let m = instance.processors;
    let order = graph
        .topological_order()
        .expect("validated graphs are acyclic");
    let mut finish = vec![0.0f64; graph.task_count()];
    for &v in &order {
        let ready = graph
            .predecessors(v)
            .iter()
            .map(|&p| finish[p])
            .fold(0.0, f64::max);
        let best_time = graph.tasks()[v].profile.truncated(m).min_time();
        finish[v] = ready + best_time;
    }
    finish.iter().cloned().fold(0.0, f64::max)
}

/// The combined lower bound.
pub fn lower_bound(instance: &PrecedenceInstance) -> f64 {
    area_bound(instance).max(critical_path_bound(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use malleable_core::{MalleableTask, SpeedupProfile};

    fn task(work: f64, m: usize) -> MalleableTask {
        MalleableTask::new(SpeedupProfile::linear(work, m).unwrap())
    }

    #[test]
    fn chain_critical_path_dominates() {
        // Three linear tasks of work 4 in a chain on 4 processors: the area
        // bound is 3, the critical path (each at 4 processors) is 3 × 1 = 3.
        let graph = TaskGraph::chain(vec![task(4.0, 4), task(4.0, 4), task(4.0, 4)]).unwrap();
        let instance = PrecedenceInstance::new(graph, 4).unwrap();
        assert!((area_bound(&instance) - 3.0).abs() < 1e-12);
        assert!((critical_path_bound(&instance) - 3.0).abs() < 1e-12);
        assert!((lower_bound(&instance) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_chain_on_wide_machine() {
        // Sequential tasks in a chain: the critical path is the total work,
        // far above the area bound on a wide machine.
        let tasks: Vec<MalleableTask> = (0..4)
            .map(|_| MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()))
            .collect();
        let graph = TaskGraph::chain(tasks).unwrap();
        let instance = PrecedenceInstance::new(graph, 16).unwrap();
        assert!((critical_path_bound(&instance) - 4.0).abs() < 1e-12);
        assert!(area_bound(&instance) < 1.0);
        assert!((lower_bound(&instance) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_reduce_to_area_or_tallest() {
        let graph = TaskGraph::independent(vec![task(8.0, 2), task(8.0, 2)]).unwrap();
        let instance = PrecedenceInstance::new(graph, 2).unwrap();
        assert!((area_bound(&instance) - 8.0).abs() < 1e-12);
        assert!((critical_path_bound(&instance) - 4.0).abs() < 1e-12);
        assert!((lower_bound(&instance) - 8.0).abs() < 1e-12);
    }
}
