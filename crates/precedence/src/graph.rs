//! Task graphs: malleable tasks plus precedence constraints.

use malleable_core::{Error, Instance, MalleableTask, Result, Schedule, TaskId};

/// A directed acyclic graph of malleable tasks.
///
/// Nodes are identified by their index in the task vector (the same
/// convention as [`malleable_core::Instance`]); an edge `(u, v)` means task
/// `v` cannot start before task `u` has completed.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    tasks: Vec<MalleableTask>,
    edges: Vec<(TaskId, TaskId)>,
    successors: Vec<Vec<TaskId>>,
    predecessors: Vec<Vec<TaskId>>,
}

impl TaskGraph {
    /// Build a graph, validating node indices and acyclicity.
    pub fn new(tasks: Vec<MalleableTask>, edges: Vec<(TaskId, TaskId)>) -> Result<Self> {
        if tasks.is_empty() {
            return Err(Error::EmptyInstance);
        }
        let n = tasks.len();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        for &(u, v) in &edges {
            if u >= n {
                return Err(Error::UnknownTask { task: u });
            }
            if v >= n {
                return Err(Error::UnknownTask { task: v });
            }
            if u == v {
                return Err(Error::UnknownTask { task: u });
            }
            successors[u].push(v);
            predecessors[v].push(u);
        }
        let graph = TaskGraph {
            tasks,
            edges,
            successors,
            predecessors,
        };
        if graph.topological_order().is_none() {
            return Err(Error::InvalidParameter {
                name: "edges",
                value: f64::NAN,
            });
        }
        Ok(graph)
    }

    /// A graph with no precedence constraints (an independent instance).
    pub fn independent(tasks: Vec<MalleableTask>) -> Result<Self> {
        Self::new(tasks, Vec::new())
    }

    /// A simple chain `0 → 1 → … → n−1`.
    pub fn chain(tasks: Vec<MalleableTask>) -> Result<Self> {
        let edges = (1..tasks.len()).map(|i| (i - 1, i)).collect();
        Self::new(tasks, edges)
    }

    /// A fork–join graph: a source, `tasks.len() − 2` parallel middle tasks,
    /// and a sink (the first and last tasks of the vector are the source and
    /// sink respectively).
    pub fn fork_join(tasks: Vec<MalleableTask>) -> Result<Self> {
        if tasks.len() < 3 {
            return Err(Error::EmptyInstance);
        }
        let sink = tasks.len() - 1;
        let mut edges = Vec::new();
        for middle in 1..sink {
            edges.push((0, middle));
            edges.push((middle, sink));
        }
        Self::new(tasks, edges)
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Access the tasks.
    pub fn tasks(&self) -> &[MalleableTask] {
        &self.tasks
    }

    /// Access the edges.
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// Direct successors of a task.
    pub fn successors(&self, task: TaskId) -> &[TaskId] {
        &self.successors[task]
    }

    /// Direct predecessors of a task.
    pub fn predecessors(&self, task: TaskId) -> &[TaskId] {
        &self.predecessors[task]
    }

    /// A topological order of the tasks, or `None` when the graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<TaskId>> {
        let n = self.tasks.len();
        let mut indegree: Vec<usize> = (0..n).map(|v| self.predecessors[v].len()).collect();
        let mut queue: Vec<TaskId> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &s in &self.successors[v] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Partition the tasks into precedence levels: level 0 contains the
    /// sources, level `k` the tasks whose longest predecessor chain has `k`
    /// edges.  Tasks within one level are mutually independent.
    pub fn levels(&self) -> Vec<Vec<TaskId>> {
        let order = self
            .topological_order()
            .expect("validated graphs are acyclic");
        let n = self.tasks.len();
        // Longest-path depth via a single forward pass over the topological
        // order: every predecessor is processed before its successors.
        let mut depth = vec![0usize; n];
        for &v in &order {
            for &s in &self.successors[v] {
                depth[s] = depth[s].max(depth[v] + 1);
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut levels = vec![Vec::new(); max_depth + 1];
        for (task, &d) in depth.iter().enumerate() {
            levels[d].push(task);
        }
        levels
    }

    /// View the node set as an independent [`Instance`] on `m` processors
    /// (dropping the edges) — used by the level scheduler and by the bounds.
    pub fn as_independent_instance(&self, processors: usize) -> Result<Instance> {
        Instance::new(self.tasks.clone(), processors)
    }
}

/// A precedence-constrained scheduling instance: a task graph plus a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecedenceInstance {
    /// The task graph.
    pub graph: TaskGraph,
    /// Number of identical processors.
    pub processors: usize,
}

impl PrecedenceInstance {
    /// Build an instance, validating the machine size.
    pub fn new(graph: TaskGraph, processors: usize) -> Result<Self> {
        if processors == 0 {
            return Err(Error::NoProcessors);
        }
        Ok(PrecedenceInstance { graph, processors })
    }

    /// The independent-task view of the instance (edges dropped).
    pub fn independent(&self) -> Result<Instance> {
        self.graph.as_independent_instance(self.processors)
    }

    /// Validate a schedule against both the machine model and the precedence
    /// constraints.
    pub fn validate(&self, schedule: &Schedule) -> Result<()> {
        let instance = self.independent()?;
        schedule.validate(&instance)?;
        for &(u, v) in self.graph.edges() {
            let pred = schedule
                .entry_for(u)
                .ok_or(Error::UnknownTask { task: u })?;
            let succ = schedule
                .entry_for(v)
                .ok_or(Error::UnknownTask { task: v })?;
            if succ.start + 1e-9 < pred.finish() {
                return Err(Error::InvalidParameter {
                    name: "precedence",
                    value: succ.start,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::SpeedupProfile;

    fn task(work: f64, m: usize) -> MalleableTask {
        MalleableTask::new(SpeedupProfile::linear(work, m).unwrap())
    }

    #[test]
    fn construction_validates_edges_and_cycles() {
        let tasks = vec![task(1.0, 4), task(2.0, 4), task(3.0, 4)];
        assert!(TaskGraph::new(tasks.clone(), vec![(0, 1), (1, 2)]).is_ok());
        assert!(TaskGraph::new(tasks.clone(), vec![(0, 5)]).is_err());
        assert!(TaskGraph::new(tasks.clone(), vec![(0, 0)]).is_err());
        assert!(TaskGraph::new(tasks, vec![(0, 1), (1, 2), (2, 0)]).is_err());
        assert!(TaskGraph::new(vec![], vec![]).is_err());
    }

    #[test]
    fn chain_and_fork_join_shapes() {
        let chain = TaskGraph::chain(vec![task(1.0, 2), task(1.0, 2), task(1.0, 2)]).unwrap();
        assert_eq!(chain.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(chain.levels(), vec![vec![0], vec![1], vec![2]]);

        let fj = TaskGraph::fork_join(vec![task(1.0, 2), task(2.0, 2), task(2.0, 2), task(1.0, 2)])
            .unwrap();
        assert_eq!(fj.levels(), vec![vec![0], vec![1, 2], vec![3]]);
        assert_eq!(fj.predecessors(3), &[1, 2]);
        assert_eq!(fj.successors(0), &[1, 2]);
    }

    #[test]
    fn topological_order_covers_all_tasks() {
        let graph = TaskGraph::new(
            vec![task(1.0, 2), task(1.0, 2), task(1.0, 2), task(1.0, 2)],
            vec![(0, 2), (1, 2), (2, 3)],
        )
        .unwrap();
        let order = graph.topological_order().unwrap();
        assert_eq!(order.len(), 4);
        let pos = |t: usize| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn independent_graph_has_single_level() {
        let graph = TaskGraph::independent(vec![task(1.0, 2), task(2.0, 2)]).unwrap();
        assert_eq!(graph.levels(), vec![vec![0, 1]]);
    }

    #[test]
    fn precedence_validation_rejects_violations() {
        use malleable_core::{ProcessorRange, Schedule, ScheduledTask};
        let graph = TaskGraph::chain(vec![task(2.0, 2), task(2.0, 2)]).unwrap();
        let instance = PrecedenceInstance::new(graph, 2).unwrap();

        let mut good = Schedule::new(2);
        good.push(ScheduledTask {
            task: 0,
            start: 0.0,
            duration: 1.0,
            processors: ProcessorRange::new(0, 2),
        });
        good.push(ScheduledTask {
            task: 1,
            start: 1.0,
            duration: 1.0,
            processors: ProcessorRange::new(0, 2),
        });
        assert!(instance.validate(&good).is_ok());

        let mut bad = Schedule::new(2);
        bad.push(ScheduledTask {
            task: 0,
            start: 0.0,
            duration: 2.0,
            processors: ProcessorRange::new(0, 1),
        });
        bad.push(ScheduledTask {
            task: 1,
            start: 0.5,
            duration: 2.0,
            processors: ProcessorRange::new(1, 1),
        });
        assert!(instance.validate(&bad).is_err());
    }

    #[test]
    fn zero_processor_machines_are_rejected() {
        let graph = TaskGraph::independent(vec![task(1.0, 2)]).unwrap();
        assert!(PrecedenceInstance::new(graph, 0).is_err());
    }
}
