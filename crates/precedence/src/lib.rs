//! # precedence
//!
//! Scheduling **precedence-constrained** malleable tasks.
//!
//! The paper's conclusion names this as the natural continuation of the work:
//! "the natural continuation of this work is to study the scheduling of
//! precedence graphs structures", citing the Prasanna–Musicus continuous
//! analysis and the tree-structured ocean application the authors were
//! working on.  The SPAA 1999 paper itself only solves the *independent*
//! task case; this crate provides the extension as two practical heuristics
//! built on top of the independent-task machinery:
//!
//! * [`scheduler::LevelScheduler`] — decompose the DAG into precedence levels
//!   and schedule every level as an independent malleable instance with the
//!   √3 algorithm of the paper, concatenating the per-level schedules.  This
//!   directly reuses Theorem 3 inside each level (the per-level makespan is
//!   within `√3 + ε` of that level's optimum), which is the simplest way the
//!   paper's result lifts to precedence graphs.
//! * [`scheduler::CpaScheduler`] — a Critical-Path-and-Area allotment
//!   heuristic in the spirit of Prasanna–Musicus / Radulescu–van Gemund:
//!   processors are granted to the tasks on the critical path until the
//!   critical-path bound and the area bound are balanced, then the rigid DAG
//!   is list-scheduled with precedence-aware earliest start times on
//!   contiguous processors.
//!
//! Neither heuristic claims the paper's worst-case factor for general DAGs —
//! no such bound is published in the 1999 paper — but both are validated
//! against the precedence-aware lower bounds of [`bounds`] and against the
//! structural validator of [`graph`], and their measured behaviour is part of
//! the extended experiment suite.

pub mod bounds;
pub mod graph;
pub mod scheduler;

pub use bounds::{area_bound, critical_path_bound, lower_bound};
pub use graph::{PrecedenceInstance, TaskGraph};
pub use scheduler::{CpaScheduler, LevelScheduler};
