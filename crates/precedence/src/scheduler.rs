//! Schedulers for precedence-constrained malleable tasks.

use crate::graph::PrecedenceInstance;
use malleable_core::prelude::*;
use malleable_core::Result;
use packing::timeline::{ProcessorTimeline, TieBreak};

/// Level-by-level scheduling: every precedence level is an independent
/// malleable instance and is scheduled with the paper's √3 algorithm; levels
/// are executed one after the other.
///
/// Inside each level the guarantee of Theorem 3 applies; across levels the
/// concatenation can lose parallelism (a level must fully finish before the
/// next starts), which is the price of reusing the independent-task result
/// unchanged.  The CPA scheduler below trades the per-level guarantee for
/// overlap across levels.
#[derive(Debug, Clone, Copy, Default)]
pub struct LevelScheduler {
    /// The scheduler used within each level.
    pub inner: MrtScheduler,
}

impl LevelScheduler {
    /// Schedule the instance level by level.
    pub fn schedule(&self, instance: &PrecedenceInstance) -> Result<Schedule> {
        let m = instance.processors;
        let mut combined = Schedule::new(m);
        let mut offset = 0.0f64;
        for level in instance.graph.levels() {
            // Build the independent sub-instance of this level.
            let tasks: Vec<MalleableTask> = level
                .iter()
                .map(|&id| instance.graph.tasks()[id].clone())
                .collect();
            let sub_instance = Instance::new(tasks, m)?;
            let result = self.inner.schedule(&sub_instance)?;
            for entry in result.schedule.entries() {
                combined.push(ScheduledTask {
                    task: level[entry.task],
                    start: entry.start + offset,
                    duration: entry.duration,
                    processors: entry.processors,
                });
            }
            offset += result.schedule.makespan();
        }
        Ok(combined)
    }
}

/// Critical-Path-and-Area allotment plus precedence-aware list scheduling.
///
/// The allotment phase grants processors to the tasks of the current critical
/// path while the critical-path bound exceeds the area bound — the discrete
/// analogue of the Prasanna–Musicus balance the paper's conclusion points to.
/// The scheduling phase is a contiguous list schedule by decreasing bottom
/// level that starts every task as early as its predecessors and the machine
/// allow.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpaScheduler {
    /// Upper bound on the number of allotment-growing iterations, as a safety
    /// valve (the natural bound `n·m` is used when `None`).
    pub max_iterations: Option<usize>,
}

impl CpaScheduler {
    /// Compute the CPA allotment.
    pub fn allotment(&self, instance: &PrecedenceInstance) -> Vec<usize> {
        let graph = &instance.graph;
        let m = instance.processors;
        let n = graph.task_count();
        let mut allotment = vec![1usize; n];
        let budget = self
            .max_iterations
            .unwrap_or_else(|| n.saturating_mul(m).max(16));

        for _ in 0..budget {
            let (cp_length, cp_tasks) = critical_path(instance, &allotment);
            let area: f64 = (0..n)
                .map(|t| graph.tasks()[t].work(allotment[t]))
                .sum::<f64>()
                / m as f64;
            if cp_length <= area {
                break;
            }
            // Grow the critical-path task with the best time gain per extra
            // processor (ties broken towards the longest task).
            let mut best: Option<(usize, f64)> = None;
            for &t in &cp_tasks {
                let p = allotment[t];
                if p >= m.min(graph.tasks()[t].profile.max_processors()) {
                    continue;
                }
                let gain = graph.tasks()[t].time(p) - graph.tasks()[t].time(p + 1);
                let gain_per_proc = gain / (p as f64 + 1.0);
                match best {
                    Some((_, g)) if g >= gain_per_proc => {}
                    _ => best = Some((t, gain_per_proc)),
                }
            }
            match best {
                Some((t, gain)) if gain > 1e-12 => allotment[t] += 1,
                _ => break, // the critical path cannot be shortened any further
            }
        }
        allotment
    }

    /// Schedule the instance: CPA allotment + precedence-aware list schedule.
    pub fn schedule(&self, instance: &PrecedenceInstance) -> Result<Schedule> {
        let allotment = self.allotment(instance);
        list_schedule_with_precedence(instance, &allotment)
    }
}

/// Critical path length under a given allotment, together with the tasks on
/// (one of) the critical paths.
fn critical_path(instance: &PrecedenceInstance, allotment: &[usize]) -> (f64, Vec<TaskId>) {
    let graph = &instance.graph;
    let order = graph
        .topological_order()
        .expect("validated graphs are acyclic");
    let n = graph.task_count();
    let mut finish = vec![0.0f64; n];
    let mut critical_pred: Vec<Option<TaskId>> = vec![None; n];
    for &v in &order {
        let mut ready = 0.0f64;
        for &p in graph.predecessors(v) {
            if finish[p] > ready {
                ready = finish[p];
                critical_pred[v] = Some(p);
            }
        }
        finish[v] = ready + graph.tasks()[v].time(allotment[v]);
    }
    let (last, &length) = finish
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .expect("non-empty graph");
    let mut path = vec![last];
    let mut cursor = last;
    while let Some(p) = critical_pred[cursor] {
        path.push(p);
        cursor = p;
    }
    path.reverse();
    (length, path)
}

/// Contiguous list scheduling of a fixed allotment under precedence
/// constraints: tasks are considered by decreasing bottom level among the
/// ready ones, and each starts at the earliest time compatible with its
/// predecessors and with a contiguous block of free processors.
pub fn list_schedule_with_precedence(
    instance: &PrecedenceInstance,
    allotment: &[usize],
) -> Result<Schedule> {
    let graph = &instance.graph;
    let m = instance.processors;
    let n = graph.task_count();
    assert_eq!(allotment.len(), n, "one processor count per task");

    // Bottom levels under the given allotment (longest path to a sink,
    // including the task itself).
    let order = graph
        .topological_order()
        .expect("validated graphs are acyclic");
    let mut bottom = vec![0.0f64; n];
    for &v in order.iter().rev() {
        let below = graph
            .successors(v)
            .iter()
            .map(|&s| bottom[s])
            .fold(0.0, f64::max);
        bottom[v] = below + graph.tasks()[v].time(allotment[v]);
    }

    let mut timeline = ProcessorTimeline::new(m);
    let mut schedule = Schedule::new(m);
    let mut finish = vec![f64::INFINITY; n];
    let mut scheduled = vec![false; n];

    for _ in 0..n {
        // Ready tasks: unscheduled, all predecessors scheduled.
        let candidate = (0..n)
            .filter(|&t| !scheduled[t])
            .filter(|&t| graph.predecessors(t).iter().all(|&p| scheduled[p]))
            .max_by(|&a, &b| bottom[a].partial_cmp(&bottom[b]).unwrap())
            .expect("an acyclic graph always has a ready task");
        let p = allotment[candidate]
            .min(m)
            .min(graph.tasks()[candidate].profile.max_processors())
            .max(1);
        let duration = graph.tasks()[candidate].time(p);
        let ready = graph
            .predecessors(candidate)
            .iter()
            .map(|&q| finish[q])
            .fold(0.0, f64::max);
        let window = timeline.earliest_window(p, TieBreak::PaperConvention);
        let start = window.start.max(ready);
        timeline.commit(window.first, p, start, duration);
        finish[candidate] = start + duration;
        scheduled[candidate] = true;
        schedule.push(ScheduledTask {
            task: candidate,
            start,
            duration,
            processors: ProcessorRange::new(window.first, p),
        });
    }

    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::graph::TaskGraph;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_task(work: f64, m: usize) -> MalleableTask {
        MalleableTask::new(SpeedupProfile::linear(work, m).unwrap())
    }

    fn amdahl_task(work: f64, alpha: f64, m: usize) -> MalleableTask {
        MalleableTask::new(
            SpeedupProfile::from_fn(m, |p| work * (alpha + (1.0 - alpha) / p as f64)).unwrap(),
        )
    }

    fn random_layered_instance(
        seed: u64,
        layers: usize,
        width: usize,
        m: usize,
    ) -> PrecedenceInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tasks = Vec::new();
        for _ in 0..layers * width {
            let work: f64 = rng.gen_range(0.5..4.0);
            let alpha: f64 = rng.gen_range(0.05..0.5);
            tasks.push(amdahl_task(work, alpha, m));
        }
        let mut edges = Vec::new();
        for layer in 1..layers {
            for i in 0..width {
                let dst = layer * width + i;
                // Every task depends on one or two tasks of the previous layer.
                let src = (layer - 1) * width + rng.gen_range(0..width);
                edges.push((src, dst));
                if rng.gen_bool(0.5) {
                    let src2 = (layer - 1) * width + rng.gen_range(0..width);
                    if src2 != src {
                        edges.push((src2, dst));
                    }
                }
            }
        }
        let graph = TaskGraph::new(tasks, edges).unwrap();
        PrecedenceInstance::new(graph, m).unwrap()
    }

    #[test]
    fn level_scheduler_respects_precedence_on_fork_join() {
        let graph = TaskGraph::fork_join(vec![
            linear_task(2.0, 8),
            linear_task(6.0, 8),
            linear_task(6.0, 8),
            linear_task(2.0, 8),
        ])
        .unwrap();
        let instance = PrecedenceInstance::new(graph, 8).unwrap();
        let schedule = LevelScheduler::default().schedule(&instance).unwrap();
        assert!(instance.validate(&schedule).is_ok());
        assert!(schedule.makespan() >= bounds::lower_bound(&instance) - 1e-9);
    }

    #[test]
    fn cpa_scheduler_respects_precedence_on_fork_join() {
        let graph = TaskGraph::fork_join(vec![
            linear_task(2.0, 8),
            linear_task(6.0, 8),
            linear_task(6.0, 8),
            linear_task(2.0, 8),
        ])
        .unwrap();
        let instance = PrecedenceInstance::new(graph, 8).unwrap();
        let schedule = CpaScheduler::default().schedule(&instance).unwrap();
        assert!(instance.validate(&schedule).is_ok());
    }

    #[test]
    fn chain_of_linear_tasks_is_scheduled_near_optimally() {
        // A chain of perfectly parallel tasks: the optimum runs every task on
        // the whole machine, reaching the critical-path bound.
        let graph = TaskGraph::chain(vec![
            linear_task(8.0, 8),
            linear_task(8.0, 8),
            linear_task(8.0, 8),
        ])
        .unwrap();
        let instance = PrecedenceInstance::new(graph, 8).unwrap();
        let lb = bounds::lower_bound(&instance);
        for schedule in [
            LevelScheduler::default().schedule(&instance).unwrap(),
            CpaScheduler::default().schedule(&instance).unwrap(),
        ] {
            assert!(instance.validate(&schedule).is_ok());
            assert!(schedule.makespan() <= 1.8 * lb + 1e-9);
        }
    }

    #[test]
    fn cpa_allotment_balances_critical_path_and_area() {
        // One heavy chain plus many independent small tasks: CPA must give the
        // chain more than one processor.
        let mut tasks = vec![linear_task(12.0, 8), linear_task(12.0, 8)];
        for _ in 0..10 {
            tasks.push(MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()));
        }
        let edges = vec![(0, 1)];
        let graph = TaskGraph::new(tasks, edges).unwrap();
        let instance = PrecedenceInstance::new(graph, 8).unwrap();
        let allotment = CpaScheduler::default().allotment(&instance);
        assert!(allotment[0] > 1);
        assert!(allotment[1] > 1);
        assert!(allotment[2..].iter().all(|&p| p == 1));
    }

    #[test]
    fn independent_graphs_match_the_flat_scheduler_quality() {
        let tasks: Vec<MalleableTask> = (0..10).map(|i| linear_task(1.0 + i as f64, 8)).collect();
        let graph = TaskGraph::independent(tasks).unwrap();
        let instance = PrecedenceInstance::new(graph, 8).unwrap();
        let level = LevelScheduler::default().schedule(&instance).unwrap();
        let flat = MrtScheduler::default()
            .schedule(&instance.independent().unwrap())
            .unwrap();
        assert!(instance.validate(&level).is_ok());
        // With a single level the level scheduler *is* the flat scheduler.
        assert!((level.makespan() - flat.schedule.makespan()).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Both schedulers always produce precedence- and machine-valid
        /// schedules on random layered DAGs, with makespans between the lower
        /// bound and the fully serial upper bound.
        #[test]
        fn random_layered_dags_are_scheduled_validly(
            seed in 0u64..200,
            layers in 1usize..5,
            width in 1usize..5,
            m in 2usize..10,
        ) {
            let instance = random_layered_instance(seed, layers, width, m);
            let lb = bounds::lower_bound(&instance);
            let serial: f64 = instance
                .graph
                .tasks()
                .iter()
                .map(|t| t.profile.sequential_time())
                .sum();
            for schedule in [
                LevelScheduler::default().schedule(&instance).unwrap(),
                CpaScheduler::default().schedule(&instance).unwrap(),
            ] {
                prop_assert!(instance.validate(&schedule).is_ok());
                prop_assert!(schedule.makespan() >= lb - 1e-9);
                prop_assert!(schedule.makespan() <= serial + 1e-9);
            }
        }
    }
}
