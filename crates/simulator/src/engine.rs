//! Discrete-event replay of a schedule.
//!
//! The engine walks the start/finish events of a schedule in time order,
//! maintaining the set of busy processors, and produces an
//! [`ExecutionTrace`]: the event log, the per-processor busy time, the
//! machine utilisation profile and the idle area.  It is the stand-in for
//! executing the schedule on a real machine and is what the experiment
//! harness uses to account for the "staircase" idle areas that the paper's
//! surface arguments reason about (its Figure 2).

use malleable_core::{Instance, Schedule};

/// The kind of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task starts.
    Start,
    /// A task finishes.
    Finish,
}

/// One event of the replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Time of the event.
    pub time: f64,
    /// Start or finish.
    pub kind: EventKind,
    /// The task concerned.
    pub task: usize,
    /// Number of processors the task holds.
    pub processors: usize,
}

/// The result of replaying a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// All events, sorted by time (finishes before starts at equal times).
    pub events: Vec<Event>,
    /// Busy time accumulated by every processor.
    pub busy_per_processor: Vec<f64>,
    /// The makespan observed during the replay.
    pub makespan: f64,
    /// Total idle area below the makespan horizon.
    pub idle_area: f64,
    /// Peak number of simultaneously busy processors.
    pub peak_busy: usize,
    /// Machine utilisation (busy area / (m × makespan)), 0 for empty traces.
    pub utilization: f64,
}

impl ExecutionTrace {
    /// Number of processors of the simulated machine.
    pub fn processors(&self) -> usize {
        self.busy_per_processor.len()
    }
}

/// Replay a schedule on a model of the machine.
///
/// The schedule is assumed to be structurally valid (see
/// [`crate::validate::validate_schedule`]); the engine itself only panics on
/// grossly malformed input (placements outside the machine).
pub fn simulate(instance: &Instance, schedule: &Schedule) -> ExecutionTrace {
    let m = instance.processors();
    let mut events = Vec::with_capacity(schedule.len() * 2);
    for entry in schedule.entries() {
        assert!(
            entry.processors.end() <= m,
            "placement outside the machine: task {}",
            entry.task
        );
        events.push(Event {
            time: entry.start,
            kind: EventKind::Start,
            task: entry.task,
            processors: entry.processors.count,
        });
        events.push(Event {
            time: entry.finish(),
            kind: EventKind::Finish,
            task: entry.task,
            processors: entry.processors.count,
        });
    }
    events.sort_by(|a, b| {
        a.time
            .partial_cmp(&b.time)
            .unwrap()
            .then_with(|| match (a.kind, b.kind) {
                (EventKind::Finish, EventKind::Start) => std::cmp::Ordering::Less,
                (EventKind::Start, EventKind::Finish) => std::cmp::Ordering::Greater,
                _ => std::cmp::Ordering::Equal,
            })
    });

    let mut busy_per_processor = vec![0.0f64; m];
    for entry in schedule.entries() {
        for busy in &mut busy_per_processor[entry.processors.first..entry.processors.end()] {
            *busy += entry.duration;
        }
    }

    // Sweep the events to find the peak number of busy processors.
    let mut current_busy = 0usize;
    let mut peak_busy = 0usize;
    for event in &events {
        match event.kind {
            EventKind::Start => {
                current_busy += event.processors;
                peak_busy = peak_busy.max(current_busy);
            }
            EventKind::Finish => {
                current_busy = current_busy.saturating_sub(event.processors);
            }
        }
    }

    let makespan = schedule.makespan();
    let busy_area: f64 = busy_per_processor.iter().sum();
    let idle_area = (m as f64 * makespan - busy_area).max(0.0);
    let utilization = if makespan > 0.0 {
        busy_area / (m as f64 * makespan)
    } else {
        0.0
    };

    ExecutionTrace {
        events,
        busy_per_processor,
        makespan,
        idle_area,
        peak_busy,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::prelude::*;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![2.0, 1.2]).unwrap(),
                SpeedupProfile::sequential(1.0).unwrap(),
                SpeedupProfile::sequential(0.4).unwrap(),
            ],
            3,
        )
        .unwrap()
    }

    fn schedule_for(inst: &Instance) -> Schedule {
        MrtScheduler::default().schedule(inst).unwrap().schedule
    }

    #[test]
    fn replay_counts_events_and_busy_time() {
        let inst = instance();
        let sched = schedule_for(&inst);
        let trace = simulate(&inst, &sched);
        assert_eq!(trace.events.len(), 2 * inst.task_count());
        assert_eq!(trace.processors(), 3);
        assert!((trace.makespan - sched.makespan()).abs() < 1e-12);
        let total_busy: f64 = trace.busy_per_processor.iter().sum();
        assert!((total_busy - sched.total_work()).abs() < 1e-9);
        assert!(trace.peak_busy <= 3);
        assert!(trace.utilization > 0.0 && trace.utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn events_are_time_ordered_with_finishes_first() {
        let inst = instance();
        let sched = schedule_for(&inst);
        let trace = simulate(&inst, &sched);
        for pair in trace.events.windows(2) {
            assert!(pair[0].time <= pair[1].time + 1e-12);
            if (pair[0].time - pair[1].time).abs() < 1e-12 {
                // At equal times finishes must not come after starts.
                assert!(!(pair[0].kind == EventKind::Start && pair[1].kind == EventKind::Finish));
            }
        }
    }

    #[test]
    fn idle_area_plus_busy_area_equals_machine_area() {
        let inst = instance();
        let sched = schedule_for(&inst);
        let trace = simulate(&inst, &sched);
        let machine_area = inst.processors() as f64 * trace.makespan;
        let busy: f64 = trace.busy_per_processor.iter().sum();
        assert!((trace.idle_area + busy - machine_area).abs() < 1e-9);
    }

    #[test]
    fn peak_busy_never_exceeds_machine() {
        // A deliberately tight schedule: two 2-processor tasks sequentially on
        // a 2-processor machine.
        let inst = Instance::from_profiles(
            vec![
                SpeedupProfile::linear(2.0, 2).unwrap(),
                SpeedupProfile::linear(2.0, 2).unwrap(),
            ],
            2,
        )
        .unwrap();
        let sched = schedule_for(&inst);
        let trace = simulate(&inst, &sched);
        assert!(trace.peak_busy <= 2);
    }

    #[test]
    #[should_panic(expected = "outside the machine")]
    fn grossly_invalid_schedule_panics() {
        let inst = instance();
        let mut bad = Schedule::new(3);
        bad.push(ScheduledTask {
            task: 0,
            start: 0.0,
            duration: 1.2,
            processors: ProcessorRange::new(2, 2),
        });
        simulate(&inst, &bad);
    }
}
