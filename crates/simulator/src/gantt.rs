//! Plain-text Gantt rendering of a schedule.
//!
//! Used by the examples to visualise the two-shelf structure of §4 and the
//! two-level structure of the list schedules without any plotting dependency.

use malleable_core::{Instance, Schedule};

/// Render a schedule as one text row per processor.
///
/// The horizon `[0, makespan]` is discretised into `columns` cells; each cell
/// shows the (single-character) label of the task occupying that processor at
/// that time, or `.` when idle.  Task labels cycle through `0-9a-zA-Z`.
pub fn render_gantt(instance: &Instance, schedule: &Schedule, columns: usize) -> String {
    let columns = columns.max(1);
    let m = instance.processors();
    let makespan = schedule.makespan().max(1e-12);
    let mut grid = vec![vec!['.'; columns]; m];

    for entry in schedule.entries() {
        let label = task_label(entry.task);
        let start_col = ((entry.start / makespan) * columns as f64).floor() as usize;
        let end_col = (((entry.finish()) / makespan) * columns as f64).ceil() as usize;
        let end_col = end_col.clamp(start_col + 1, columns);
        for row in &mut grid[entry.processors.first..entry.processors.end().min(m)] {
            for cell in row.iter_mut().take(end_col).skip(start_col) {
                *cell = label;
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "makespan = {:.4}, processors = {}, tasks = {}\n",
        schedule.makespan(),
        m,
        schedule.len()
    ));
    for (p, row) in grid.iter().enumerate() {
        out.push_str(&format!("P{:<3} |", p));
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

fn task_label(task: usize) -> char {
    const ALPHABET: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    ALPHABET[task % ALPHABET.len()] as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::prelude::*;

    #[test]
    fn gantt_contains_one_row_per_processor() {
        let inst = Instance::from_profiles(
            vec![
                SpeedupProfile::linear(2.0, 2).unwrap(),
                SpeedupProfile::sequential(0.5).unwrap(),
            ],
            3,
        )
        .unwrap();
        let result = MrtScheduler::default().schedule(&inst).unwrap();
        let text = render_gantt(&inst, &result.schedule, 40);
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 4); // header + 3 processors
        assert!(rows[0].contains("makespan"));
        assert!(rows[1].starts_with("P0"));
        // The busy cells of task 0 are rendered with its label '0'.
        assert!(text.contains('0'));
    }

    #[test]
    fn labels_cycle_through_alphabet() {
        assert_eq!(task_label(0), '0');
        assert_eq!(task_label(10), 'a');
        assert_eq!(task_label(36), 'A');
        assert_eq!(task_label(62), '0');
    }

    #[test]
    fn empty_columns_are_clamped() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::sequential(1.0).unwrap()], 1).unwrap();
        let result = MrtScheduler::default().schedule(&inst).unwrap();
        let text = render_gantt(&inst, &result.schedule, 0);
        assert!(text.contains("P0"));
    }
}
