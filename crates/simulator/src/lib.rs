//! # simulator
//!
//! A discrete-event multiprocessor simulator and an exhaustive schedule
//! validator for the malleable-task schedules produced by `malleable-core`
//! and `baselines`.
//!
//! The original paper evaluates its algorithms analytically (worst-case
//! guarantees); the authors' parallel testbed is not available, so this crate
//! is the substrate standing in for "run the schedule on the machine": it
//! replays a [`malleable_core::Schedule`] event by event on a model of `m`
//! identical processors, checks every structural invariant the paper's model
//! imposes (§2), and reports machine-level statistics (utilisation, idle
//! areas, per-processor load) used by the experiment harness.
//!
//! Three layers are provided:
//!
//! * [`validate`] — a strict validator returning a list of violations
//!   (capacity, contiguity, overlap, allotment/time consistency, missing or
//!   duplicated tasks), with a piecewise-allotment mode
//!   ([`validate_piecewise_subset`]) that checks per-segment feasibility and
//!   per-task work conservation for schedules produced by mid-execution
//!   re-allotment;
//! * [`engine`] — a discrete-event engine producing an [`engine::ExecutionTrace`]
//!   with start/finish events and a per-processor busy/idle profile;
//! * [`gantt`] — a plain-text Gantt rendering used by the examples.

#![warn(missing_docs)]

pub mod engine;
pub mod gantt;
pub mod validate;

pub use engine::{simulate, Event, EventKind, ExecutionTrace};
pub use gantt::render_gantt;
pub use validate::{
    validate_piecewise_subset, validate_schedule, validate_schedule_subset, ValidationReport,
    Violation,
};
