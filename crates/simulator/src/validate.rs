//! Strict schedule validation.
//!
//! [`malleable_core::Schedule::validate`] performs a fail-fast check used in
//! unit tests; this module performs the same checks but collects *all*
//! violations with human-readable context, plus two additional model checks
//! the core type cannot do on its own:
//!
//! * **monotone consistency** — the recorded duration must equal the task's
//!   profile time at the allotted count (guards against schedules built from
//!   stale or transformed instances);
//! * **deadline conformance** — optionally verify every task finishes before
//!   a caller-supplied horizon (used by the dual-approximation tests to check
//!   `makespan ≤ ρ·ω` claims).

use malleable_core::{Instance, Schedule};

/// A single violation discovered by the validator.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A task of the instance does not appear in the schedule.
    MissingTask {
        /// The absent task.
        task: usize,
    },
    /// A task appears more than once.
    DuplicatedTask {
        /// The duplicated task.
        task: usize,
    },
    /// The schedule references a task outside the instance.
    UnknownTask {
        /// The out-of-range task index.
        task: usize,
    },
    /// A placement uses processors outside `0..m`.
    OutOfMachine {
        /// The offending task.
        task: usize,
        /// First processor of the placement.
        first: usize,
        /// Processors allotted.
        count: usize,
    },
    /// A placement starts before time zero or at a non-finite time.
    InvalidStart {
        /// The offending task.
        task: usize,
        /// The recorded start time.
        start: f64,
    },
    /// The recorded duration disagrees with the task's profile.
    DurationMismatch {
        /// The offending task.
        task: usize,
        /// The profile time at the allotted count.
        expected: f64,
        /// The duration the schedule records.
        actual: f64,
    },
    /// Two placements overlap in time on a shared processor.
    Overlap {
        /// The earlier of the two overlapping tasks.
        first_task: usize,
        /// The later of the two overlapping tasks.
        second_task: usize,
    },
    /// A task finishes after the supplied horizon.
    DeadlineExceeded {
        /// The offending task.
        task: usize,
        /// When the task actually finishes.
        finish: f64,
        /// The horizon it had to meet.
        horizon: f64,
    },
    /// A segment's duration is non-finite or not positive (piecewise
    /// schedules only — a degenerate duration would also poison the work
    /// conservation sum into an unreportable NaN).
    InvalidDuration {
        /// The offending task.
        task: usize,
        /// The degenerate segment duration.
        duration: f64,
    },
    /// Two segments of the same task overlap in time (a malleable task runs
    /// at one allotment at a time; piecewise schedules only).
    ConcurrentSegments {
        /// The offending task.
        task: usize,
    },
    /// The executed fractions of a task's segments do not sum to one
    /// (work conservation under the speed-up model; piecewise schedules
    /// only).
    WorkNotConserved {
        /// The offending task.
        task: usize,
        /// The executed fraction its segments sum to (should be 1).
        executed: f64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingTask { task } => write!(f, "task {task} is not scheduled"),
            Violation::DuplicatedTask { task } => write!(f, "task {task} is scheduled twice"),
            Violation::UnknownTask { task } => write!(f, "task {task} does not exist"),
            Violation::OutOfMachine { task, first, count } => write!(
                f,
                "task {task} uses processors [{first}, {}) beyond the machine",
                first + count
            ),
            Violation::InvalidStart { task, start } => {
                write!(f, "task {task} has invalid start time {start}")
            }
            Violation::DurationMismatch {
                task,
                expected,
                actual,
            } => write!(
                f,
                "task {task} records duration {actual} but its profile gives {expected}"
            ),
            Violation::Overlap {
                first_task,
                second_task,
            } => write!(f, "tasks {first_task} and {second_task} overlap"),
            Violation::DeadlineExceeded {
                task,
                finish,
                horizon,
            } => write!(
                f,
                "task {task} finishes at {finish}, after the horizon {horizon}"
            ),
            Violation::InvalidDuration { task, duration } => {
                write!(
                    f,
                    "task {task} has a degenerate segment duration {duration}"
                )
            }
            Violation::ConcurrentSegments { task } => {
                write!(f, "task {task} runs two segments concurrently")
            }
            Violation::WorkNotConserved { task, executed } => write!(
                f,
                "task {task} executes fraction {executed} of its work across its segments"
            ),
        }
    }
}

/// The result of a validation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// All violations found (empty when the schedule is valid).
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// Whether the schedule passed every check.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validate a schedule against its instance, optionally against a horizon.
pub fn validate_schedule(
    instance: &Instance,
    schedule: &Schedule,
    horizon: Option<f64>,
) -> ValidationReport {
    validate_schedule_impl(instance, schedule, horizon, false)
}

/// Validate a schedule that legitimately covers only a *subset* of the
/// instance's tasks — the online engine's output when tasks departed before
/// starting.  Identical to [`validate_schedule`] except that absent tasks are
/// not reported as [`Violation::MissingTask`]; every scheduled task is still
/// held to the full machine-model, duration and overlap checks (backfilled
/// and preempted-then-replanned placements must pass them unchanged).
pub fn validate_schedule_subset(
    instance: &Instance,
    schedule: &Schedule,
    horizon: Option<f64>,
) -> ValidationReport {
    validate_schedule_impl(instance, schedule, horizon, true)
}

/// Validate a **piecewise-allotment** schedule covering a subset of the
/// instance's tasks — the online engine's output under mid-execution
/// re-allotment, where a task may appear as several segments, each at a
/// different (constant) allotment.
///
/// Checks, per segment: machine-model feasibility (processors within the
/// machine, a finite non-negative start, a positive width) and the optional
/// horizon; per task: segments chronologically disjoint
/// ([`Violation::ConcurrentSegments`]) and **work conservation** under the
/// speed-up model — each segment executes `duration / t(allotment)` of the
/// task, and the fractions must sum to one within `1e-6`
/// ([`Violation::WorkNotConserved`]); across tasks: the all-pairs processor
/// overlap check.  Absent tasks are tolerated (subset semantics, as in
/// [`validate_schedule_subset`]).  A single-segment task degenerates to the
/// classical duration-matches-profile check, so this validator accepts every
/// schedule the non-preemptive engine produces, too.
pub fn validate_piecewise_subset(
    instance: &Instance,
    schedule: &Schedule,
    horizon: Option<f64>,
) -> ValidationReport {
    let mut violations = Vec::new();
    let m = instance.processors();
    let n = instance.task_count();
    let mut segments: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); n];

    for entry in schedule.entries() {
        if entry.task >= n {
            violations.push(Violation::UnknownTask { task: entry.task });
            continue;
        }
        if entry.processors.end() > m {
            violations.push(Violation::OutOfMachine {
                task: entry.task,
                first: entry.processors.first,
                count: entry.processors.count,
            });
        }
        if !(entry.start.is_finite() && entry.start >= -1e-12) {
            violations.push(Violation::InvalidStart {
                task: entry.task,
                start: entry.start,
            });
        }
        if !(entry.duration.is_finite() && entry.duration > 1e-12) {
            violations.push(Violation::InvalidDuration {
                task: entry.task,
                duration: entry.duration,
            });
            // A degenerate duration would poison the per-task sums (NaN
            // compares false against every threshold), so the segment is
            // excluded from the chronology and conservation checks.
            continue;
        }
        if let Some(h) = horizon {
            if entry.finish() > h + 1e-6 {
                violations.push(Violation::DeadlineExceeded {
                    task: entry.task,
                    finish: entry.finish(),
                    horizon: h,
                });
            }
        }
        segments[entry.task].push((entry.start, entry.duration, entry.processors.count));
    }

    for (task, segs) in segments.iter_mut().enumerate() {
        if segs.is_empty() {
            continue; // subset semantics: absent tasks are legitimate
        }
        segs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in segs.windows(2) {
            let (prev_start, prev_duration, _) = pair[0];
            let (next_start, _, _) = pair[1];
            if next_start < prev_start + prev_duration - 1e-9 {
                violations.push(Violation::ConcurrentSegments { task });
            }
        }
        let executed: f64 = segs
            .iter()
            .map(|&(_, duration, count)| duration / instance.time(task, count))
            .sum();
        if (executed - 1.0).abs() > 1e-6 {
            violations.push(Violation::WorkNotConserved { task, executed });
        }
    }

    let entries = schedule.entries();
    for (i, a) in entries.iter().enumerate() {
        for b in entries.iter().skip(i + 1) {
            if a.conflicts_with(b) {
                violations.push(Violation::Overlap {
                    first_task: a.task,
                    second_task: b.task,
                });
            }
        }
    }

    ValidationReport { violations }
}

fn validate_schedule_impl(
    instance: &Instance,
    schedule: &Schedule,
    horizon: Option<f64>,
    allow_missing: bool,
) -> ValidationReport {
    let mut violations = Vec::new();
    let m = instance.processors();
    let n = instance.task_count();
    let mut seen = vec![0usize; n];

    for entry in schedule.entries() {
        if entry.task >= n {
            violations.push(Violation::UnknownTask { task: entry.task });
            continue;
        }
        seen[entry.task] += 1;
        if entry.processors.end() > m {
            violations.push(Violation::OutOfMachine {
                task: entry.task,
                first: entry.processors.first,
                count: entry.processors.count,
            });
        }
        if !(entry.start.is_finite() && entry.start >= -1e-12) {
            violations.push(Violation::InvalidStart {
                task: entry.task,
                start: entry.start,
            });
        }
        let expected = instance.time(entry.task, entry.processors.count);
        if (expected - entry.duration).abs() > 1e-6 {
            violations.push(Violation::DurationMismatch {
                task: entry.task,
                expected,
                actual: entry.duration,
            });
        }
        if let Some(h) = horizon {
            if entry.finish() > h + 1e-6 {
                violations.push(Violation::DeadlineExceeded {
                    task: entry.task,
                    finish: entry.finish(),
                    horizon: h,
                });
            }
        }
    }

    for (task, &count) in seen.iter().enumerate() {
        if count == 0 && !allow_missing {
            violations.push(Violation::MissingTask { task });
        } else if count > 1 {
            violations.push(Violation::DuplicatedTask { task });
        }
    }

    let entries = schedule.entries();
    for (i, a) in entries.iter().enumerate() {
        for b in entries.iter().skip(i + 1) {
            if a.conflicts_with(b) {
                violations.push(Violation::Overlap {
                    first_task: a.task,
                    second_task: b.task,
                });
            }
        }
    }

    ValidationReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::{ProcessorRange, ScheduledTask, SpeedupProfile};

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![2.0, 1.2]).unwrap(),
                SpeedupProfile::sequential(1.0).unwrap(),
            ],
            3,
        )
        .unwrap()
    }

    fn entry(task: usize, start: f64, duration: f64, first: usize, count: usize) -> ScheduledTask {
        ScheduledTask {
            task,
            start,
            duration,
            processors: ProcessorRange::new(first, count),
        }
    }

    #[test]
    fn valid_schedule_has_no_violations() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 0, 2));
        s.push(entry(1, 0.0, 1.0, 2, 1));
        let report = validate_schedule(&inst, &s, Some(1.2));
        assert!(report.is_valid(), "{:?}", report.violations);
    }

    #[test]
    fn missing_and_duplicate_tasks_are_reported() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 0, 2));
        s.push(entry(0, 2.0, 1.2, 0, 2));
        let report = validate_schedule(&inst, &s, None);
        assert!(report
            .violations
            .contains(&Violation::MissingTask { task: 1 }));
        assert!(report
            .violations
            .contains(&Violation::DuplicatedTask { task: 0 }));
    }

    #[test]
    fn overlap_and_capacity_violations_are_reported() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 1, 2));
        s.push(entry(1, 0.5, 1.0, 2, 1));
        let report = validate_schedule(&inst, &s, None);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Overlap { .. })));
        let mut s2 = Schedule::new(3);
        s2.push(entry(0, 0.0, 1.2, 2, 2));
        s2.push(entry(1, 0.0, 1.0, 0, 1));
        let report2 = validate_schedule(&inst, &s2, None);
        assert!(report2
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OutOfMachine { .. })));
    }

    #[test]
    fn duration_mismatch_and_deadline_are_reported() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 0.7, 0, 2));
        s.push(entry(1, 0.0, 1.0, 2, 1));
        let report = validate_schedule(&inst, &s, Some(0.9));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DurationMismatch { task: 0, .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DeadlineExceeded { task: 1, .. })));
    }

    #[test]
    fn subset_validation_tolerates_missing_tasks_only() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 0, 2));
        // Task 1 absent: the strict validator objects, the subset one not.
        assert!(!validate_schedule(&inst, &s, None).is_valid());
        assert!(validate_schedule_subset(&inst, &s, None).is_valid());
        // Every other violation class still fires in subset mode.
        let mut overlapping = Schedule::new(3);
        overlapping.push(entry(0, 0.0, 1.2, 0, 2));
        overlapping.push(entry(1, 0.5, 1.0, 1, 1));
        let report = validate_schedule_subset(&inst, &overlapping, None);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Overlap { .. })));
        let mut duplicated = Schedule::new(3);
        duplicated.push(entry(0, 0.0, 1.2, 0, 2));
        duplicated.push(entry(0, 2.0, 1.2, 0, 2));
        assert!(validate_schedule_subset(&inst, &duplicated, None)
            .violations
            .contains(&Violation::DuplicatedTask { task: 0 }));
    }

    #[test]
    fn piecewise_segments_conserving_work_are_valid() {
        let inst = instance();
        // Task 0 (t(1)=2.0, t(2)=1.2) split mid-execution: half its work at
        // one processor (1.0 time unit), the other half at two (0.6 units).
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.0, 0, 1));
        s.push(entry(0, 1.0, 0.6, 0, 2));
        s.push(entry(1, 0.0, 1.0, 2, 1));
        let report = validate_piecewise_subset(&inst, &s, Some(1.6));
        assert!(report.is_valid(), "{:?}", report.violations);
        // The same schedule fails the single-allotment validator (duplicate
        // + duration mismatch), which is exactly why the piecewise mode
        // exists.
        assert!(!validate_schedule_subset(&inst, &s, None).is_valid());
    }

    #[test]
    fn piecewise_validator_accepts_single_allotment_schedules() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 0, 2));
        s.push(entry(1, 0.0, 1.0, 2, 1));
        assert!(validate_piecewise_subset(&inst, &s, Some(1.2)).is_valid());
        // Subset semantics: a missing task is fine, a short duration is not.
        let mut partial = Schedule::new(3);
        partial.push(entry(1, 0.0, 1.0, 2, 1));
        assert!(validate_piecewise_subset(&inst, &partial, None).is_valid());
        let mut short = Schedule::new(3);
        short.push(entry(0, 0.0, 0.9, 0, 2));
        let report = validate_piecewise_subset(&inst, &short, None);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WorkNotConserved { task: 0, .. })));
    }

    #[test]
    fn piecewise_violations_are_reported() {
        let inst = instance();
        // Work over-executed (both segments run the whole task).
        let mut over = Schedule::new(3);
        over.push(entry(0, 0.0, 1.2, 0, 2));
        over.push(entry(0, 2.0, 1.2, 0, 2));
        let report = validate_piecewise_subset(&inst, &over, None);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WorkNotConserved { task: 0, .. })));
        // Concurrent segments of one task (disjoint processors, overlapping
        // time): caught by the per-task chronology check, not the processor
        // overlap check.
        let mut concurrent = Schedule::new(3);
        concurrent.push(entry(0, 0.0, 1.0, 0, 1));
        concurrent.push(entry(0, 0.5, 0.6, 1, 2));
        let report = validate_piecewise_subset(&inst, &concurrent, None);
        assert!(report
            .violations
            .contains(&Violation::ConcurrentSegments { task: 0 }));
        // Cross-task processor overlaps still fire.
        let mut overlap = Schedule::new(3);
        overlap.push(entry(0, 0.0, 1.2, 0, 2));
        overlap.push(entry(1, 0.5, 1.0, 1, 1));
        let report = validate_piecewise_subset(&inst, &overlap, None);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Overlap { .. })));
        // Degenerate durations are reported, never silently accepted — a
        // NaN would otherwise poison the conservation sum into a value that
        // compares false against every threshold.
        for bad in [f64::NAN, -1.0, 0.0, f64::INFINITY] {
            let mut degenerate = Schedule::new(3);
            degenerate.push(entry(0, 0.0, bad, 0, 2));
            let report = validate_piecewise_subset(&inst, &degenerate, Some(10.0));
            assert!(
                report.violations.contains(&Violation::InvalidDuration {
                    task: 0,
                    duration: bad
                }) || (bad.is_nan()
                    && report
                        .violations
                        .iter()
                        .any(|v| matches!(v, Violation::InvalidDuration { task: 0, .. }))),
                "duration {bad}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn unknown_task_is_reported() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 0, 2));
        s.push(entry(1, 0.0, 1.0, 2, 1));
        s.push(entry(7, 0.0, 1.0, 2, 1));
        let report = validate_schedule(&inst, &s, None);
        assert!(report
            .violations
            .contains(&Violation::UnknownTask { task: 7 }));
    }

    #[test]
    fn violations_render_messages() {
        let v = Violation::DeadlineExceeded {
            task: 3,
            finish: 2.0,
            horizon: 1.5,
        };
        assert!(v.to_string().contains("after the horizon"));
    }
}
