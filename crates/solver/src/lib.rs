//! # solver
//!
//! The workspace-level solver registry: every scheduling algorithm shipped by
//! this workspace — the paper's √3 MRT dual approximation, the Ludwig/TWY
//! two-phase baselines, gang scheduling, sequential LPT, the canonical
//! list construction and the precedence-extension CPA heuristic — behind the
//! unified [`Solver`] trait of `malleable_core::solver`, resolved by name
//! through one [`SolverRegistry`].
//!
//! The CLI (`--solver <name>`), the online policies (`EpochReplan`,
//! `BatchUntilIdle`) and the benchmark harness all consume this registry, so
//! adding an algorithm here — one `Solver` impl plus one `register` line —
//! makes it available everywhere at once.
//!
//! ```rust
//! use malleable_core::prelude::*;
//! use workload::{WorkloadConfig, WorkloadGenerator};
//!
//! let instance = WorkloadGenerator::new(WorkloadConfig::mixed(12, 8, 7))
//!     .generate()
//!     .unwrap();
//! let registry = solver::default_registry();
//! // Every registered algorithm answers the same request.
//! for handle in registry.solvers() {
//!     let outcome = handle.solve(&SolveRequest::new(&instance)).unwrap();
//!     assert!(outcome.schedule.validate(&instance).is_ok(), "{}", handle.name());
//! }
//! ```

#![warn(missing_docs)]

use std::sync::Arc;

use baselines::{gang_schedule, sequential_lpt, RigidScheduler, TwoPhaseScheduler};
use malleable_core::bounds;
use malleable_core::solver::core_registry;
pub use malleable_core::solver::{
    CanonicalListSolver, MrtSolver, SolveOutcome, SolveRequest, Solver, SolverCapabilities,
    SolverHandle, SolverRegistry,
};
use malleable_core::{Instance, Schedule};

/// Wrap a one-shot construction into a [`SolveOutcome`], timing it and
/// pairing the schedule with the static lower bound.
fn heuristic_outcome(
    name: &'static str,
    instance: &Instance,
    build: impl FnOnce() -> malleable_core::Result<Schedule>,
) -> malleable_core::Result<SolveOutcome> {
    let timer = telemetry::SpanTimer::start();
    let schedule = build()?;
    Ok(SolveOutcome {
        solver: name,
        schedule,
        lower_bound: bounds::lower_bound(instance),
        certified: false,
        feasible_omega: None,
        probes: 0,
        wall_time: timer.elapsed(),
        time_budget_exhausted: false,
    })
}

/// The Turek–Wolf–Yu / Ludwig two-phase method behind the [`Solver`] trait:
/// TWY allotment selection followed by the configured rigid phase.
#[derive(Debug, Clone, Copy)]
pub struct TwoPhaseSolver {
    /// The rigid (phase 2) scheduler run on the selected allotment.
    pub rigid: RigidScheduler,
}

impl TwoPhaseSolver {
    /// The Ludwig-style default: TWY allotment + FFDH level packing.
    pub fn ludwig() -> Self {
        TwoPhaseSolver {
            rigid: RigidScheduler::Ffdh,
        }
    }
}

impl Solver for TwoPhaseSolver {
    fn name(&self) -> &'static str {
        match self.rigid {
            RigidScheduler::Ffdh => "ludwig",
            RigidScheduler::Nfdh => "twy-nfdh",
            RigidScheduler::List => "twy-list",
        }
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities {
            // Guarantee 2 holds for the method with Steinberg's strip packer,
            // which the default FFDH phase stands in for (the substitution is
            // documented in DESIGN.md and measured in EXPERIMENTS.md); the
            // NFDH/list phases carry no claimed bound.
            guarantee: match self.rigid {
                RigidScheduler::Ffdh => Some(2.0),
                RigidScheduler::Nfdh | RigidScheduler::List => None,
            },
            ..SolverCapabilities::heuristic()
        }
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        heuristic_outcome(self.name(), request.instance, || {
            TwoPhaseScheduler { rigid: self.rigid }.schedule(request.instance)
        })
    }
}

/// Gang scheduling behind the [`Solver`] trait: every task runs on the whole
/// machine, back to back.
#[derive(Debug, Clone, Copy, Default)]
pub struct GangSolver;

impl Solver for GangSolver {
    fn name(&self) -> &'static str {
        "gang"
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities::heuristic()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        heuristic_outcome(self.name(), request.instance, || {
            Ok(gang_schedule(request.instance))
        })
    }
}

/// The precedence-extension scheduler behind the [`Solver`] trait: the
/// Critical-Path-and-Area allotment heuristic of the `precedence` crate
/// ([`precedence::CpaScheduler`]), run on the edgeless DAG view of the
/// independent instance.
///
/// On independent tasks CPA grants processors to the longest tasks until the
/// critical-path bound and the area bound balance — a different operating
/// point than the dual-approximation allotments, exposed so the extension
/// crate's machinery is reachable from every consumer layer (CLI
/// `--solver precedence`, online planning oracle, bench sweeps).  No
/// worst-case bound is claimed (see the `precedence` crate docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct PrecedenceSolver;

impl Solver for PrecedenceSolver {
    fn name(&self) -> &'static str {
        "precedence"
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities::heuristic()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        heuristic_outcome(self.name(), request.instance, || {
            let graph = precedence::TaskGraph::independent(request.instance.tasks().to_vec())?;
            let pinstance =
                precedence::PrecedenceInstance::new(graph, request.instance.processors())?;
            precedence::CpaScheduler::default().schedule(&pinstance)
        })
    }
}

/// Sequential LPT behind the [`Solver`] trait: every task on one processor,
/// Graham's LPT order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialLptSolver;

impl Solver for SequentialLptSolver {
    fn name(&self) -> &'static str {
        "lpt"
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities::heuristic()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        heuristic_outcome(self.name(), request.instance, || {
            Ok(sequential_lpt(request.instance))
        })
    }
}

/// The full workspace registry: the core solvers (`mrt`, `list`) plus every
/// baseline (`ludwig`, `twy-list`, `twy-nfdh`, `gang`, `lpt`) and the
/// `precedence` extension scheduler, with the legacy CLI spellings
/// registered as aliases.
pub fn default_registry() -> SolverRegistry {
    let mut registry = core_registry();
    registry.register("ludwig", &["two-phase", "ludwig-2phase"], || {
        Arc::new(TwoPhaseSolver::ludwig())
    });
    registry.register("twy-list", &[], || {
        Arc::new(TwoPhaseSolver {
            rigid: RigidScheduler::List,
        })
    });
    registry.register("twy-nfdh", &[], || {
        Arc::new(TwoPhaseSolver {
            rigid: RigidScheduler::Nfdh,
        })
    });
    registry.register("gang", &[], || Arc::new(GangSolver));
    registry.register("lpt", &["sequential", "sequential-lpt"], || {
        Arc::new(SequentialLptSolver)
    });
    registry.register("precedence", &["cpa", "precedence-cpa"], || {
        Arc::new(PrecedenceSolver)
    });
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{WorkloadConfig, WorkloadGenerator};

    fn instance(seed: u64) -> Instance {
        WorkloadGenerator::new(WorkloadConfig::mixed(14, 8, seed))
            .generate()
            .unwrap()
    }

    #[test]
    fn default_registry_lists_every_algorithm() {
        let registry = default_registry();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            vec![
                "mrt",
                "list",
                "ludwig",
                "twy-list",
                "twy-nfdh",
                "gang",
                "lpt",
                "precedence"
            ]
        );
        for (alias, canonical) in [
            ("sqrt3", "mrt"),
            ("two-phase", "ludwig"),
            ("sequential", "lpt"),
            ("canonical-list", "list"),
            ("cpa", "precedence"),
        ] {
            assert_eq!(registry.resolve(alias), Some(canonical), "{alias}");
        }
    }

    #[test]
    fn every_registered_solver_produces_a_valid_outcome() {
        let inst = instance(3);
        for handle in default_registry().solvers() {
            let outcome = handle.solve(&SolveRequest::new(&inst)).unwrap();
            assert!(
                outcome.schedule.validate(&inst).is_ok(),
                "{}",
                handle.name()
            );
            assert_eq!(outcome.solver, handle.name());
            assert!(outcome.lower_bound > 0.0);
            assert!(outcome.ratio() >= 1.0 - 1e-9, "{}", handle.name());
        }
    }

    #[test]
    fn baseline_solvers_match_their_legacy_entry_points() {
        let inst = instance(5);
        let req = SolveRequest::new(&inst);
        assert_eq!(
            GangSolver.solve(&req).unwrap().schedule,
            gang_schedule(&inst)
        );
        assert_eq!(
            SequentialLptSolver.solve(&req).unwrap().schedule,
            sequential_lpt(&inst)
        );
        assert_eq!(
            TwoPhaseSolver::ludwig().solve(&req).unwrap().schedule,
            baselines::ludwig(&inst).unwrap()
        );
        let graph = precedence::TaskGraph::independent(inst.tasks().to_vec()).unwrap();
        let pinstance = precedence::PrecedenceInstance::new(graph, inst.processors()).unwrap();
        assert_eq!(
            PrecedenceSolver.solve(&req).unwrap().schedule,
            precedence::CpaScheduler::default()
                .schedule(&pinstance)
                .unwrap()
        );
    }

    #[test]
    fn capabilities_reflect_the_algorithm_class() {
        let registry = default_registry();
        let mrt = registry.get("mrt").unwrap().capabilities();
        assert!(mrt.certified_lower_bound && mrt.supports_warm_start && mrt.anytime);
        assert_eq!(mrt.guarantee, Some(malleable_core::SQRT3));
        let gang = registry.get("gang").unwrap().capabilities();
        assert!(!gang.certified_lower_bound && !gang.supports_warm_start);
        assert_eq!(
            registry.get("ludwig").unwrap().capabilities().guarantee,
            Some(2.0)
        );
    }
}
