//! # solver
//!
//! The workspace-level solver registry: every scheduling algorithm shipped by
//! this workspace — the paper's √3 MRT dual approximation, the Ludwig/TWY
//! two-phase baselines, gang scheduling, sequential LPT, the canonical
//! list construction and the precedence-extension CPA heuristic — behind the
//! unified [`Solver`] trait of `malleable_core::solver`, resolved by name
//! through one [`SolverRegistry`].
//!
//! The CLI (`--solver <name>`), the online policies (`EpochReplan`,
//! `BatchUntilIdle`) and the benchmark harness all consume this registry, so
//! adding an algorithm here — one `Solver` impl plus one `register` line —
//! makes it available everywhere at once.
//!
//! ```rust
//! use malleable_core::prelude::*;
//! use workload::{WorkloadConfig, WorkloadGenerator};
//!
//! let instance = WorkloadGenerator::new(WorkloadConfig::mixed(12, 8, 7))
//!     .generate()
//!     .unwrap();
//! let registry = solver::default_registry();
//! // Every registered algorithm answers the same request.
//! for handle in registry.solvers() {
//!     let outcome = handle.solve(&SolveRequest::new(&instance)).unwrap();
//!     assert!(outcome.schedule.validate(&instance).is_ok(), "{}", handle.name());
//! }
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use baselines::{gang_schedule, sequential_lpt, RigidScheduler, TwoPhaseScheduler};
use malleable_core::bounds;
use malleable_core::solver::core_registry;
pub use malleable_core::solver::{
    CanonicalListSolver, ConfigValue, MrtSolver, SolveOutcome, SolveRequest, Solver,
    SolverCapabilities, SolverConfig, SolverHandle, SolverRegistry,
};
use malleable_core::workspace::ProbeWorkspace;
use malleable_core::Schedule;
use telemetry::{names, SharedRecorder, TelemetryEvent};

/// Wrap a one-shot construction into a [`SolveOutcome`], timing it and
/// pairing the schedule with the static lower bound.  The request's
/// `time_budget` is honoured *post hoc*, uniformly across every heuristic:
/// a one-shot construction cannot stop midway, but an overrun is reported
/// through [`SolveOutcome::time_budget_exhausted`] so wrappers (the online
/// fallback ladder) can react to any registry solver blowing its budget.
fn heuristic_outcome(
    name: &'static str,
    request: &SolveRequest<'_>,
    build: impl FnOnce() -> malleable_core::Result<Schedule>,
) -> malleable_core::Result<SolveOutcome> {
    let timer = telemetry::SpanTimer::start();
    let schedule = build()?;
    let wall_time = timer.elapsed();
    Ok(SolveOutcome {
        solver: name,
        schedule,
        lower_bound: bounds::lower_bound(request.instance),
        certified: false,
        feasible_omega: None,
        probes: 0,
        wall_time,
        time_budget_exhausted: request.time_budget.is_some_and(|budget| wall_time > budget),
    })
}

/// The Turek–Wolf–Yu / Ludwig two-phase method behind the [`Solver`] trait:
/// TWY allotment selection followed by the configured rigid phase.
///
/// The rigid (phase 2) scheduler is selected through the typed
/// [`SolverConfig`] payload — the same `rigid` key a [`SolveRequest`] may
/// carry (`ffdh`/`nfdh`/`list`).  The solver holds *default* config applied
/// when the request carries no `rigid` key, so one registered handle serves
/// any phase per call and there is no bespoke configuration path beside the
/// typed one.
#[derive(Debug, Clone)]
pub struct TwoPhaseSolver {
    /// The rigid phase the defaults select, parsed once at construction so
    /// no later call has to re-validate (and possibly fail on) the config.
    default_rigid: RigidScheduler,
}

impl TwoPhaseSolver {
    /// A solver whose default phase is `rigid` (infallible: the config text
    /// is derived from the known-valid variant, not parsed).
    fn for_rigid(rigid: RigidScheduler) -> Self {
        TwoPhaseSolver {
            default_rigid: rigid,
        }
    }

    /// The Ludwig-style default: TWY allotment + FFDH level packing.
    pub fn ludwig() -> Self {
        Self::for_rigid(RigidScheduler::Ffdh)
    }

    /// TWY allotment + NFDH level packing.
    pub fn nfdh() -> Self {
        Self::for_rigid(RigidScheduler::Nfdh)
    }

    /// TWY allotment + greedy list scheduling of the selected allotment.
    pub fn list() -> Self {
        Self::for_rigid(RigidScheduler::List)
    }

    /// A two-phase solver with an explicit default config.  The `rigid` key
    /// selects the phase-2 scheduler (absent means FFDH); an unknown value
    /// is rejected here, at construction, with the same typed error a bad
    /// request-level key produces at solve time.
    pub fn with_defaults(defaults: SolverConfig) -> malleable_core::Result<Self> {
        let default_rigid = match defaults.text("rigid") {
            Some(value) => Self::parse_rigid(value)?,
            None => RigidScheduler::Ffdh,
        };
        Ok(TwoPhaseSolver { default_rigid })
    }

    fn parse_rigid(value: &str) -> malleable_core::Result<RigidScheduler> {
        match value {
            "ffdh" => Ok(RigidScheduler::Ffdh),
            "nfdh" => Ok(RigidScheduler::Nfdh),
            "list" => Ok(RigidScheduler::List),
            other => Err(malleable_core::Error::InvalidConfig {
                key: "rigid",
                message: format!("`{other}` is not one of ffdh, nfdh, list"),
            }),
        }
    }

    /// The phase the defaults select (parsed at construction).
    fn default_rigid(&self) -> RigidScheduler {
        self.default_rigid
    }

    /// The rigid phase this request selects: the request's `rigid` config
    /// key when present, the solver's defaults otherwise.
    fn effective_rigid(
        &self,
        request: &SolveRequest<'_>,
    ) -> malleable_core::Result<RigidScheduler> {
        match request.config_text("rigid") {
            None => Ok(self.default_rigid()),
            Some(value) => Self::parse_rigid(value),
        }
    }

    fn rigid_name(rigid: RigidScheduler) -> &'static str {
        match rigid {
            RigidScheduler::Ffdh => "ludwig",
            RigidScheduler::Nfdh => "twy-nfdh",
            RigidScheduler::List => "twy-list",
        }
    }
}

impl Solver for TwoPhaseSolver {
    fn name(&self) -> &'static str {
        Self::rigid_name(self.default_rigid())
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities {
            // Guarantee 2 holds for the method with Steinberg's strip packer,
            // which the default FFDH phase stands in for (the substitution is
            // documented in DESIGN.md and measured in EXPERIMENTS.md); the
            // NFDH/list phases carry no claimed bound.
            guarantee: match self.default_rigid() {
                RigidScheduler::Ffdh => Some(2.0),
                RigidScheduler::Nfdh | RigidScheduler::List => None,
            },
            ..SolverCapabilities::heuristic()
        }
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        let rigid = self.effective_rigid(request)?;
        heuristic_outcome(Self::rigid_name(rigid), request, || {
            TwoPhaseScheduler { rigid }.schedule(request.instance)
        })
    }
}

/// Gang scheduling behind the [`Solver`] trait: every task runs on the whole
/// machine, back to back.
#[derive(Debug, Clone, Copy, Default)]
pub struct GangSolver;

impl Solver for GangSolver {
    fn name(&self) -> &'static str {
        "gang"
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities::heuristic()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        heuristic_outcome(self.name(), request, || Ok(gang_schedule(request.instance)))
    }
}

/// The precedence-extension scheduler behind the [`Solver`] trait: the
/// Critical-Path-and-Area allotment heuristic of the `precedence` crate
/// ([`precedence::CpaScheduler`]), run on the edgeless DAG view of the
/// independent instance.
///
/// On independent tasks CPA grants processors to the longest tasks until the
/// critical-path bound and the area bound balance — a different operating
/// point than the dual-approximation allotments, exposed so the extension
/// crate's machinery is reachable from every consumer layer (CLI
/// `--solver precedence`, online planning oracle, bench sweeps).  No
/// worst-case bound is claimed (see the `precedence` crate docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct PrecedenceSolver;

impl Solver for PrecedenceSolver {
    fn name(&self) -> &'static str {
        "precedence"
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities::heuristic()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        heuristic_outcome(self.name(), request, || {
            let graph = precedence::TaskGraph::independent(request.instance.tasks().to_vec())?;
            let pinstance =
                precedence::PrecedenceInstance::new(graph, request.instance.processors())?;
            precedence::CpaScheduler::default().schedule(&pinstance)
        })
    }
}

/// Sequential LPT behind the [`Solver`] trait: every task on one processor,
/// Graham's LPT order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialLptSolver;

impl Solver for SequentialLptSolver {
    fn name(&self) -> &'static str {
        "lpt"
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities::heuristic()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        heuristic_outcome(self.name(), request, || {
            Ok(sequential_lpt(request.instance))
        })
    }
}

/// How [`FaultInjectingSolver`] fails its targeted solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverFaultMode {
    /// The targeted solve returns an error.
    Error,
    /// The targeted solve succeeds but reports
    /// [`SolveOutcome::time_budget_exhausted`] — a simulated budget blow.
    BudgetExhausted,
}

/// Deterministic solver-fault injection: delegates every call to the wrapped
/// solver except the `target`-th one (0-based across `solve` and
/// `solve_with_workspace`), which faults in the configured
/// [`SolverFaultMode`].  Used by the chaos harness to exercise the
/// [`FallbackSolver`] ladder; not registered in the registry.
pub struct FaultInjectingSolver {
    inner: SolverHandle,
    target: u64,
    mode: SolverFaultMode,
    solves: AtomicU64,
}

impl FaultInjectingSolver {
    /// Fault the `target`-th solve (0-based) of `inner` in the given mode.
    pub fn new(inner: SolverHandle, target: usize, mode: SolverFaultMode) -> Self {
        FaultInjectingSolver {
            inner,
            target: target as u64,
            mode,
            solves: AtomicU64::new(0),
        }
    }

    fn apply(
        &self,
        outcome: malleable_core::Result<SolveOutcome>,
    ) -> malleable_core::Result<SolveOutcome> {
        let index = self.solves.fetch_add(1, Ordering::Relaxed);
        if index != self.target {
            return outcome;
        }
        match self.mode {
            SolverFaultMode::Error => Err(malleable_core::Error::InvalidParameter {
                name: "injected-solver-fault",
                value: index as f64,
            }),
            SolverFaultMode::BudgetExhausted => outcome.map(|mut o| {
                o.time_budget_exhausted = true;
                o
            }),
        }
    }
}

impl Solver for FaultInjectingSolver {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capabilities(&self) -> SolverCapabilities {
        self.inner.capabilities()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        let outcome = self.inner.solve(request);
        self.apply(outcome)
    }

    fn solve_with_workspace(
        &self,
        request: &SolveRequest<'_>,
        workspace: &mut ProbeWorkspace,
    ) -> malleable_core::Result<SolveOutcome> {
        let outcome = self.inner.solve_with_workspace(request, workspace);
        self.apply(outcome)
    }
}

/// The degradation ladder: try the primary solver; when it errors or blows
/// its [`SolveRequest::time_budget`], serve the epoch from the fallback (by
/// default the greedy [`CanonicalListSolver`]) instead of dropping it, and
/// emit a `solver_degraded` telemetry event.
///
/// The wrapper reports the *primary's* name and capabilities, so planning
/// policies (warm starts, telemetry spans) treat it as the primary; only the
/// degraded epochs differ.  Not registered in the registry — construct it
/// around any registry handle.
pub struct FallbackSolver {
    primary: SolverHandle,
    fallback: SolverHandle,
    recorder: Option<SharedRecorder>,
    solves: AtomicU64,
    degraded_count: AtomicU64,
}

impl FallbackSolver {
    /// Wrap `primary` with the greedy canonical-list fallback.
    pub fn new(primary: SolverHandle) -> Self {
        FallbackSolver {
            primary,
            fallback: Arc::new(CanonicalListSolver),
            recorder: None,
            solves: AtomicU64::new(0),
            degraded_count: AtomicU64::new(0),
        }
    }

    /// Use an explicit fallback solver instead of the canonical list.
    pub fn with_fallback(mut self, fallback: SolverHandle) -> Self {
        self.fallback = fallback;
        self
    }

    /// Emit `solver_degraded` telemetry through this recorder.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Epoch solves degraded to the fallback so far.
    pub fn degraded(&self) -> u64 {
        self.degraded_count.load(Ordering::Relaxed)
    }

    fn note_degraded(&self, solve_index: u64, reason: String) {
        self.degraded_count.fetch_add(1, Ordering::Relaxed);
        if let Some(recorder) = &self.recorder {
            if recorder.enabled() {
                recorder.event(TelemetryEvent::SolverDegraded {
                    solve_index,
                    solver: self.primary.name().to_string(),
                    fallback: self.fallback.name().to_string(),
                    reason,
                });
            }
            recorder.add(names::SOLVER_DEGRADED, 1);
        }
    }

    fn finish(
        &self,
        request: &SolveRequest<'_>,
        primary_outcome: malleable_core::Result<SolveOutcome>,
    ) -> malleable_core::Result<SolveOutcome> {
        let index = self.solves.fetch_add(1, Ordering::Relaxed);
        match primary_outcome {
            Ok(outcome) if !outcome.time_budget_exhausted => Ok(outcome),
            Ok(_) => {
                self.note_degraded(index, "time budget".to_string());
                self.fallback.solve(request)
            }
            Err(err) => {
                self.note_degraded(index, err.to_string());
                self.fallback.solve(request)
            }
        }
    }
}

impl Solver for FallbackSolver {
    fn name(&self) -> &'static str {
        self.primary.name()
    }

    fn capabilities(&self) -> SolverCapabilities {
        self.primary.capabilities()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> malleable_core::Result<SolveOutcome> {
        let outcome = self.primary.solve(request);
        self.finish(request, outcome)
    }

    fn solve_with_workspace(
        &self,
        request: &SolveRequest<'_>,
        workspace: &mut ProbeWorkspace,
    ) -> malleable_core::Result<SolveOutcome> {
        let outcome = self.primary.solve_with_workspace(request, workspace);
        self.finish(request, outcome)
    }
}

/// The full workspace registry: the core solvers (`mrt`, `list`) plus every
/// baseline (`ludwig`, `twy-list`, `twy-nfdh`, `gang`, `lpt`), the
/// `precedence` extension scheduler, and the heterogeneous-cluster solvers
/// (`hetero-lp`, `hetero-greedy` — cluster selected per request via the
/// `machine-classes` config key), with the legacy CLI spellings registered
/// as aliases.
pub fn default_registry() -> SolverRegistry {
    let mut registry = core_registry();
    registry.register("ludwig", &["two-phase", "ludwig-2phase"], || {
        Arc::new(TwoPhaseSolver::ludwig())
    });
    registry.register("twy-list", &[], || Arc::new(TwoPhaseSolver::list()));
    registry.register("twy-nfdh", &[], || Arc::new(TwoPhaseSolver::nfdh()));
    registry.register("gang", &[], || Arc::new(GangSolver));
    registry.register("lpt", &["sequential", "sequential-lpt"], || {
        Arc::new(SequentialLptSolver)
    });
    registry.register("precedence", &["cpa", "precedence-cpa"], || {
        Arc::new(PrecedenceSolver)
    });
    registry.register("hetero-lp", &["hetero"], || {
        Arc::new(hetero::HeteroSolver::lp())
    });
    registry.register("hetero-greedy", &[], || {
        Arc::new(hetero::HeteroSolver::greedy())
    });
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::Instance;
    use workload::{WorkloadConfig, WorkloadGenerator};

    fn instance(seed: u64) -> Instance {
        WorkloadGenerator::new(WorkloadConfig::mixed(14, 8, seed))
            .generate()
            .unwrap()
    }

    #[test]
    fn default_registry_lists_every_algorithm() {
        let registry = default_registry();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            vec![
                "mrt",
                "list",
                "ludwig",
                "twy-list",
                "twy-nfdh",
                "gang",
                "lpt",
                "precedence",
                "hetero-lp",
                "hetero-greedy"
            ]
        );
        for (alias, canonical) in [
            ("sqrt3", "mrt"),
            ("two-phase", "ludwig"),
            ("sequential", "lpt"),
            ("canonical-list", "list"),
            ("cpa", "precedence"),
            ("hetero", "hetero-lp"),
        ] {
            assert_eq!(registry.resolve(alias), Some(canonical), "{alias}");
        }
    }

    #[test]
    fn every_registered_solver_produces_a_valid_outcome() {
        let inst = instance(3);
        for handle in default_registry().solvers() {
            let outcome = handle.solve(&SolveRequest::new(&inst)).unwrap();
            assert!(
                outcome.schedule.validate(&inst).is_ok(),
                "{}",
                handle.name()
            );
            assert_eq!(outcome.solver, handle.name());
            assert!(outcome.lower_bound > 0.0);
            assert!(outcome.ratio() >= 1.0 - 1e-9, "{}", handle.name());
        }
    }

    #[test]
    fn baseline_solvers_match_their_legacy_entry_points() {
        let inst = instance(5);
        let req = SolveRequest::new(&inst);
        assert_eq!(
            GangSolver.solve(&req).unwrap().schedule,
            gang_schedule(&inst)
        );
        assert_eq!(
            SequentialLptSolver.solve(&req).unwrap().schedule,
            sequential_lpt(&inst)
        );
        assert_eq!(
            TwoPhaseSolver::ludwig().solve(&req).unwrap().schedule,
            baselines::ludwig(&inst).unwrap()
        );
        let graph = precedence::TaskGraph::independent(inst.tasks().to_vec()).unwrap();
        let pinstance = precedence::PrecedenceInstance::new(graph, inst.processors()).unwrap();
        assert_eq!(
            PrecedenceSolver.solve(&req).unwrap().schedule,
            precedence::CpaScheduler::default()
                .schedule(&pinstance)
                .unwrap()
        );
    }

    #[test]
    fn rigid_config_key_overrides_constructor_state() {
        let inst = instance(7);
        let ludwig = TwoPhaseSolver::ludwig();
        // Without a config the solver's defaults decide.
        let plain = ludwig.solve(&SolveRequest::new(&inst)).unwrap();
        assert_eq!(plain.solver, "ludwig");
        // The `rigid` key re-targets the phase-2 scheduler per call; the
        // outcome matches the handle that has the phase as its default.
        for (key, name) in [
            ("ffdh", "ludwig"),
            ("nfdh", "twy-nfdh"),
            ("list", "twy-list"),
        ] {
            let config = SolverConfig::new().with_text("rigid", key);
            let outcome = ludwig
                .solve(&SolveRequest::new(&inst).with_config(&config))
                .unwrap();
            assert_eq!(outcome.solver, name, "{key}");
            let dedicated = TwoPhaseSolver::with_defaults(config)
                .unwrap()
                .solve(&SolveRequest::new(&inst))
                .unwrap();
            assert_eq!(outcome.schedule, dedicated.schedule, "{key}");
        }
        // The defaults themselves are validated at construction with the
        // same typed error a bad request-level key produces at solve time.
        match TwoPhaseSolver::with_defaults(SolverConfig::new().with_text("rigid", "magic")) {
            Err(malleable_core::Error::InvalidConfig { key, .. }) => assert_eq!(key, "rigid"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Unknown rigid phases are rejected with a typed config error.
        let bad = SolverConfig::new().with_text("rigid", "magic");
        match ludwig.solve(&SolveRequest::new(&inst).with_config(&bad)) {
            Err(malleable_core::Error::InvalidConfig { key, .. }) => assert_eq!(key, "rigid"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Solvers that do not understand the key ignore it (the documented
        // unknown-knob contract).
        let outcome = GangSolver
            .solve(&SolveRequest::new(&inst).with_config(&bad))
            .unwrap();
        assert!(outcome.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn hetero_lp_reproduces_mrt_on_a_uniform_cluster() {
        // The identical-machines parity guarantee, exercised through the
        // registry: without a `machine-classes` key the classed solver runs
        // on the uniform single-class cluster and must reproduce the `mrt`
        // schedule exactly — same makespan, same probes, bit for bit.
        let registry = default_registry();
        let classed = registry.get("hetero-lp").expect("registered");
        let mrt = registry.get("mrt").expect("registered");
        for seed in [3, 5, 11] {
            let inst = instance(seed);
            let request =
                SolveRequest::new(&inst).with_mode(malleable_core::prelude::SearchMode::Exact);
            let a = classed.solve(&request).unwrap();
            let b = mrt.solve(&request).unwrap();
            assert_eq!(a.schedule, b.schedule, "seed {seed}");
            assert_eq!(a.makespan(), b.makespan(), "seed {seed}");
            assert_eq!(a.probes, b.probes, "seed {seed}");
        }
        // With a classed spec the same handle splits the machine; the
        // LP assignment must not lose to the speed-blind ablation.
        let inst = instance(7);
        let run = |assign: &str| {
            let config = SolverConfig::new()
                .with_text("machine-classes", "old=4x1.0,new=4x2.5")
                .with_text("assign", assign);
            classed
                .solve(&SolveRequest::new(&inst).with_config(&config))
                .unwrap()
                .makespan()
        };
        assert!(run("lp") <= run("blind") + 1e-9);
    }

    #[test]
    fn heuristics_report_time_budget_overruns_uniformly() {
        let inst = instance(9);
        // A zero budget is always overrun; no budget never is.
        for handle in default_registry().solvers() {
            let strict = SolveRequest::new(&inst).with_time_budget(std::time::Duration::ZERO);
            let outcome = handle.solve(&strict).unwrap();
            // The core canonical list solver is exempt by its documented
            // contract ("one-shot solvers ignore the knob"); every workspace
            // heuristic reports the overrun.
            if handle.name() != "list" {
                assert!(outcome.time_budget_exhausted, "{}", handle.name());
            }
            let relaxed = handle.solve(&SolveRequest::new(&inst)).unwrap();
            assert!(!relaxed.time_budget_exhausted, "{}", handle.name());
        }
    }

    #[test]
    fn fallback_solver_degrades_on_error_and_budget_blow() {
        use telemetry::CollectingRecorder;
        let inst = instance(11);
        for mode in [SolverFaultMode::Error, SolverFaultMode::BudgetExhausted] {
            let primary = default_registry().get("mrt").unwrap();
            let faulty: SolverHandle = Arc::new(FaultInjectingSolver::new(primary, 1, mode));
            let recorder = CollectingRecorder::shared();
            let ladder = FallbackSolver::new(faulty).with_recorder(recorder.clone());
            assert_eq!(ladder.name(), "mrt", "wrapper keeps the primary name");
            // Solve 0 passes through, solve 1 faults and degrades, solve 2
            // recovers.
            for i in 0..3u64 {
                let outcome = ladder.solve(&SolveRequest::new(&inst)).unwrap();
                assert!(outcome.schedule.validate(&inst).is_ok(), "solve {i}");
                if i == 1 {
                    assert_eq!(outcome.solver, "list", "degraded epoch uses the fallback");
                }
            }
            assert_eq!(ladder.degraded(), 1);
            assert_eq!(
                recorder.counter(telemetry::names::SOLVER_DEGRADED),
                1,
                "{mode:?}"
            );
            let degraded: Vec<_> = recorder
                .events()
                .into_iter()
                .filter(|e| e.kind() == "solver_degraded")
                .collect();
            assert_eq!(degraded.len(), 1);
            if let TelemetryEvent::SolverDegraded {
                solve_index,
                solver,
                fallback,
                ..
            } = &degraded[0]
            {
                assert_eq!(
                    (*solve_index, solver.as_str(), fallback.as_str()),
                    (1, "mrt", "list")
                );
            } else {
                unreachable!();
            }
        }
    }

    #[test]
    fn capabilities_reflect_the_algorithm_class() {
        let registry = default_registry();
        let mrt = registry.get("mrt").unwrap().capabilities();
        assert!(mrt.certified_lower_bound && mrt.supports_warm_start && mrt.anytime);
        assert_eq!(mrt.guarantee, Some(malleable_core::SQRT3));
        let gang = registry.get("gang").unwrap().capabilities();
        assert!(!gang.certified_lower_bound && !gang.supports_warm_start);
        assert_eq!(
            registry.get("ludwig").unwrap().capabilities().guarantee,
            Some(2.0)
        );
    }
}
