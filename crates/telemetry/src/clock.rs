//! The workspace-wide monotonic clock source.
//!
//! Every wall-time figure in the repository — `SolveOutcome::wall_time`, the
//! dual-search time budget, engine decision latency, epoch solve spans — is
//! measured through [`SpanTimer`] so that all durations come from one
//! monotonic clock and are directly comparable.

use std::time::{Duration, Instant};

/// A span timer over the process-wide monotonic clock.
///
/// `SpanTimer` is a thin wrapper around [`std::time::Instant`]; its value is
/// not the mechanism but the convention: call sites that used to construct
/// ad-hoc `Instant::now()` pairs now share this one type, so a span recorded
/// by the solver and a span recorded by the engine are guaranteed to use the
/// same clock source and the same nanosecond scale.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    started: Instant,
}

impl SpanTimer {
    /// Starts a new span at the current monotonic instant.
    ///
    /// The one sanctioned raw-clock call site: `clippy.toml` disallows
    /// `Instant::now` (and the lint crate's `single-clock` rule exempts
    /// only this file) so every other span goes through here.
    #[inline]
    #[allow(clippy::disallowed_methods)]
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Elapsed wall time since the span started.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed wall time in whole nanoseconds, saturating at `u64::MAX`.
    ///
    /// Histogram samples and JSONL records use nanoseconds as the canonical
    /// unit; the saturation bound is ~584 years and never binds in practice.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for SpanTimer {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let timer = SpanTimer::start();
        let first = timer.elapsed_ns();
        let second = timer.elapsed_ns();
        assert!(second >= first);
        assert!(timer.elapsed() >= Duration::from_nanos(first));
    }
}
