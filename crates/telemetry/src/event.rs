//! Structured event records for the online engine and the epoch solvers.
//!
//! Each event serialises to one JSON object (one line of a JSONL stream) via
//! the vendored `serde_json`, tagged by a `"type"` field, and parses back
//! with [`TelemetryEvent::from_json`] — the stream is a lossless round trip
//! (simulated-clock times are `f64` and survive the shortest-round-trip
//! float formatting; wall times are integer nanoseconds well below 2^53).

use serde_json::{json, Value};

/// One structured telemetry record emitted by the engine or a policy.
///
/// Times named `time`/`start`/`end`/`at` are simulated clock values (the
/// trace's time unit); `wall_ns` is wall-clock nanoseconds from the shared
/// monotonic [`SpanTimer`](crate::SpanTimer) source.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// An epoch solve is starting: the policy hands `pending` queued tasks to
    /// the named offline solver, warm-started or not.
    SolveStart {
        /// Simulated time of the replan trigger.
        time: f64,
        /// Registry name of the offline solver.
        solver: String,
        /// Queued tasks in the sub-instance.
        pending: usize,
        /// Whether the dual search was seeded from the previous epoch's ω.
        warm_start: bool,
    },
    /// The epoch solve finished.
    SolveEnd {
        /// Simulated time of the replan trigger.
        time: f64,
        /// Registry name of the offline solver.
        solver: String,
        /// Oracle probes consumed by this solve.
        probes: u64,
        /// Wall-clock nanoseconds spent in the solve span.
        wall_ns: u64,
        /// Commitments produced by the plan.
        scheduled: usize,
        /// Whether the dual search was seeded from the previous epoch's ω.
        warm_start: bool,
    },
    /// A task was committed to the reservation timeline.
    Place {
        /// Simulated time of the decision.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
        /// Committed start time.
        start: f64,
        /// Committed duration at the chosen allotment.
        duration: f64,
        /// Processors allotted.
        processors: usize,
        /// True when the commitment begins before the latest committed start
        /// seen so far — i.e. the placement filled an earlier hole.
        backfilled: bool,
    },
    /// A queued (not yet running) commitment was revoked during preemption.
    Revoke {
        /// Simulated time of the revocation.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
    },
    /// A running task's reservation was truncated for re-allotment.
    Truncate {
        /// Simulated time of the truncation.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
        /// Simulated time the reservation now ends at.
        at: f64,
    },
    /// A task finished executing.
    Complete {
        /// Simulated completion time.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
    },
    /// A task departed (served or abandoned at its patience deadline).
    Depart {
        /// Simulated departure time.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
        /// True when the task had already completed service.
        completed: bool,
    },
    /// Time-weighted utilisation over one epoch interval: the integral of
    /// busy processors over `[start, end)` divided by `m · (end - start)`.
    EpochUtilization {
        /// Interval start (simulated time).
        start: f64,
        /// Interval end (simulated time).
        end: f64,
        /// Mean busy fraction in `[0, 1]` over the interval.
        busy: f64,
    },
    /// An engine invariant was violated — always a bug; CI gates on zero.
    InvariantViolation {
        /// Simulated time the violation was detected.
        time: f64,
        /// Human-readable description.
        detail: String,
    },
    /// A processor crashed and went offline (fault runs only).
    ProcessorDown {
        /// Simulated crash time.
        time: f64,
        /// Processor index.
        processor: usize,
        /// Commitments displaced off the crashed processor.
        displaced: usize,
    },
    /// A crashed processor was repaired and came back online.
    ProcessorUp {
        /// Simulated repair time.
        time: f64,
        /// Processor index.
        processor: usize,
    },
    /// An injected fault killed the current attempt of a task; the work of
    /// the failed segment is lost.
    TaskFailure {
        /// Simulated failure time.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
        /// 1-based count of failures of this task so far.
        attempt: usize,
        /// Processor·time integral of the lost segment.
        lost_work: f64,
    },
    /// A failed task was scheduled for retry after its backoff.
    RetryScheduled {
        /// Simulated time of the failure that triggered the retry.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
        /// 1-based count of failures of this task so far.
        attempt: usize,
        /// Simulated time the retry re-enters the queue.
        at: f64,
    },
    /// Per-machine-class utilisation over a classed run: the integral of
    /// busy processors within the class pool against the capacity the pool
    /// offered over the horizon.
    ClassUtilization {
        /// Machine-class name (from the cluster spec).
        class: String,
        /// Integral of busy processors within the class over the horizon.
        busy: f64,
        /// `count × horizon` — the processor-time the class offered.
        capacity: f64,
    },
    /// A queued task was re-assigned from one machine class to another by
    /// an epoch re-solve (running tasks never migrate).
    ClassMigration {
        /// Simulated time of the re-assignment.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
        /// Class the task was previously assigned to.
        from_class: String,
        /// Class the task is now assigned to.
        to_class: String,
    },
    /// The primary solver faulted and the epoch was degraded to the
    /// fallback solver.
    SolverDegraded {
        /// 0-based index of the faulted solve.
        solve_index: u64,
        /// Registry name of the primary solver.
        solver: String,
        /// Registry name of the fallback that served the epoch.
        fallback: String,
        /// Why the primary was bypassed (error text or "time budget").
        reason: String,
    },
    /// A queued task was moved from an overloaded shard to a less loaded
    /// one by the work-stealing rebalance at an epoch boundary (sharded
    /// engine only).
    Steal {
        /// Simulated time of the epoch boundary.
        time: f64,
        /// Task id from the arrival trace.
        task: u64,
        /// Shard the task was queued on before the steal.
        from_shard: usize,
        /// Shard that executes the task after the steal.
        to_shard: usize,
    },
}

impl TelemetryEvent {
    /// The `"type"` tag used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::SolveStart { .. } => "solve_start",
            TelemetryEvent::SolveEnd { .. } => "solve_end",
            TelemetryEvent::Place { .. } => "place",
            TelemetryEvent::Revoke { .. } => "revoke",
            TelemetryEvent::Truncate { .. } => "truncate",
            TelemetryEvent::Complete { .. } => "complete",
            TelemetryEvent::Depart { .. } => "depart",
            TelemetryEvent::EpochUtilization { .. } => "epoch_utilization",
            TelemetryEvent::InvariantViolation { .. } => "invariant_violation",
            TelemetryEvent::ProcessorDown { .. } => "processor_down",
            TelemetryEvent::ProcessorUp { .. } => "processor_up",
            TelemetryEvent::TaskFailure { .. } => "task_failure",
            TelemetryEvent::RetryScheduled { .. } => "retry_scheduled",
            TelemetryEvent::ClassUtilization { .. } => "class_utilization",
            TelemetryEvent::ClassMigration { .. } => "class_migration",
            TelemetryEvent::SolverDegraded { .. } => "solver_degraded",
            TelemetryEvent::Steal { .. } => "steal",
        }
    }

    /// Encodes the event as one JSON object (one JSONL line).
    pub fn to_json(&self) -> Value {
        match self {
            TelemetryEvent::SolveStart {
                time,
                solver,
                pending,
                warm_start,
            } => json!({
                "type": "solve_start",
                "time": *time,
                "solver": solver.as_str(),
                "pending": *pending,
                "warm_start": *warm_start,
            }),
            TelemetryEvent::SolveEnd {
                time,
                solver,
                probes,
                wall_ns,
                scheduled,
                warm_start,
            } => json!({
                "type": "solve_end",
                "time": *time,
                "solver": solver.as_str(),
                "probes": *probes,
                "wall_ns": *wall_ns,
                "scheduled": *scheduled,
                "warm_start": *warm_start,
            }),
            TelemetryEvent::Place {
                time,
                task,
                start,
                duration,
                processors,
                backfilled,
            } => json!({
                "type": "place",
                "time": *time,
                "task": *task,
                "start": *start,
                "duration": *duration,
                "processors": *processors,
                "backfilled": *backfilled,
            }),
            TelemetryEvent::Revoke { time, task } => json!({
                "type": "revoke",
                "time": *time,
                "task": *task,
            }),
            TelemetryEvent::Truncate { time, task, at } => json!({
                "type": "truncate",
                "time": *time,
                "task": *task,
                "at": *at,
            }),
            TelemetryEvent::Complete { time, task } => json!({
                "type": "complete",
                "time": *time,
                "task": *task,
            }),
            TelemetryEvent::Depart {
                time,
                task,
                completed,
            } => json!({
                "type": "depart",
                "time": *time,
                "task": *task,
                "completed": *completed,
            }),
            TelemetryEvent::EpochUtilization { start, end, busy } => json!({
                "type": "epoch_utilization",
                "start": *start,
                "end": *end,
                "busy": *busy,
            }),
            TelemetryEvent::InvariantViolation { time, detail } => json!({
                "type": "invariant_violation",
                "time": *time,
                "detail": detail.as_str(),
            }),
            TelemetryEvent::ProcessorDown {
                time,
                processor,
                displaced,
            } => json!({
                "type": "processor_down",
                "time": *time,
                "processor": *processor,
                "displaced": *displaced,
            }),
            TelemetryEvent::ProcessorUp { time, processor } => json!({
                "type": "processor_up",
                "time": *time,
                "processor": *processor,
            }),
            TelemetryEvent::TaskFailure {
                time,
                task,
                attempt,
                lost_work,
            } => json!({
                "type": "task_failure",
                "time": *time,
                "task": *task,
                "attempt": *attempt,
                "lost_work": *lost_work,
            }),
            TelemetryEvent::RetryScheduled {
                time,
                task,
                attempt,
                at,
            } => json!({
                "type": "retry_scheduled",
                "time": *time,
                "task": *task,
                "attempt": *attempt,
                "at": *at,
            }),
            TelemetryEvent::ClassUtilization {
                class,
                busy,
                capacity,
            } => json!({
                "type": "class_utilization",
                "class": class.as_str(),
                "busy": *busy,
                "capacity": *capacity,
            }),
            TelemetryEvent::ClassMigration {
                time,
                task,
                from_class,
                to_class,
            } => json!({
                "type": "class_migration",
                "time": *time,
                "task": *task,
                "from_class": from_class.as_str(),
                "to_class": to_class.as_str(),
            }),
            TelemetryEvent::SolverDegraded {
                solve_index,
                solver,
                fallback,
                reason,
            } => json!({
                "type": "solver_degraded",
                "solve_index": *solve_index,
                "solver": solver.as_str(),
                "fallback": fallback.as_str(),
                "reason": reason.as_str(),
            }),
            TelemetryEvent::Steal {
                time,
                task,
                from_shard,
                to_shard,
            } => json!({
                "type": "steal",
                "time": *time,
                "task": *task,
                "from_shard": *from_shard,
                "to_shard": *to_shard,
            }),
        }
    }

    /// Parses an event back from its JSON encoding.  Returns `None` when the
    /// value is not an object, the `"type"` tag is unknown, or a required
    /// field is missing or mistyped.
    pub fn from_json(value: &Value) -> Option<TelemetryEvent> {
        let kind = value.get("type")?.as_str()?;
        let time = |key: &str| value.get(key).and_then(Value::as_f64);
        let int = |key: &str| value.get(key).and_then(Value::as_u64);
        let flag = |key: &str| value.get(key).and_then(Value::as_bool);
        let text = |key: &str| value.get(key).and_then(Value::as_str).map(str::to_string);
        Some(match kind {
            "solve_start" => TelemetryEvent::SolveStart {
                time: time("time")?,
                solver: text("solver")?,
                pending: int("pending")? as usize,
                warm_start: flag("warm_start")?,
            },
            "solve_end" => TelemetryEvent::SolveEnd {
                time: time("time")?,
                solver: text("solver")?,
                probes: int("probes")?,
                wall_ns: int("wall_ns")?,
                scheduled: int("scheduled")? as usize,
                warm_start: flag("warm_start")?,
            },
            "place" => TelemetryEvent::Place {
                time: time("time")?,
                task: int("task")?,
                start: time("start")?,
                duration: time("duration")?,
                processors: int("processors")? as usize,
                backfilled: flag("backfilled")?,
            },
            "revoke" => TelemetryEvent::Revoke {
                time: time("time")?,
                task: int("task")?,
            },
            "truncate" => TelemetryEvent::Truncate {
                time: time("time")?,
                task: int("task")?,
                at: time("at")?,
            },
            "complete" => TelemetryEvent::Complete {
                time: time("time")?,
                task: int("task")?,
            },
            "depart" => TelemetryEvent::Depart {
                time: time("time")?,
                task: int("task")?,
                completed: flag("completed")?,
            },
            "epoch_utilization" => TelemetryEvent::EpochUtilization {
                start: time("start")?,
                end: time("end")?,
                busy: time("busy")?,
            },
            "invariant_violation" => TelemetryEvent::InvariantViolation {
                time: time("time")?,
                detail: text("detail")?,
            },
            "processor_down" => TelemetryEvent::ProcessorDown {
                time: time("time")?,
                processor: int("processor")? as usize,
                displaced: int("displaced")? as usize,
            },
            "processor_up" => TelemetryEvent::ProcessorUp {
                time: time("time")?,
                processor: int("processor")? as usize,
            },
            "task_failure" => TelemetryEvent::TaskFailure {
                time: time("time")?,
                task: int("task")?,
                attempt: int("attempt")? as usize,
                lost_work: time("lost_work")?,
            },
            "retry_scheduled" => TelemetryEvent::RetryScheduled {
                time: time("time")?,
                task: int("task")?,
                attempt: int("attempt")? as usize,
                at: time("at")?,
            },
            "class_utilization" => TelemetryEvent::ClassUtilization {
                class: text("class")?,
                busy: time("busy")?,
                capacity: time("capacity")?,
            },
            "class_migration" => TelemetryEvent::ClassMigration {
                time: time("time")?,
                task: int("task")?,
                from_class: text("from_class")?,
                to_class: text("to_class")?,
            },
            "solver_degraded" => TelemetryEvent::SolverDegraded {
                solve_index: int("solve_index")?,
                solver: text("solver")?,
                fallback: text("fallback")?,
                reason: text("reason")?,
            },
            "steal" => TelemetryEvent::Steal {
                time: time("time")?,
                task: int("task")?,
                from_shard: int("from_shard")? as usize,
                to_shard: int("to_shard")? as usize,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::SolveStart {
                time: 0.1,
                solver: "mrt".into(),
                pending: 3,
                warm_start: false,
            },
            TelemetryEvent::SolveEnd {
                time: 0.1,
                solver: "mrt".into(),
                probes: 17,
                wall_ns: 812_345,
                scheduled: 3,
                warm_start: true,
            },
            TelemetryEvent::Place {
                time: 0.1,
                task: 4,
                start: 0.25,
                duration: 1.5,
                processors: 2,
                backfilled: true,
            },
            TelemetryEvent::Revoke { time: 1.0, task: 4 },
            TelemetryEvent::Truncate {
                time: 1.5,
                task: 2,
                at: 2.0,
            },
            TelemetryEvent::Complete { time: 2.0, task: 2 },
            TelemetryEvent::Depart {
                time: 2.5,
                task: 9,
                completed: false,
            },
            TelemetryEvent::EpochUtilization {
                start: 0.0,
                end: 1.0,
                busy: 0.875,
            },
            TelemetryEvent::InvariantViolation {
                time: 3.0,
                detail: "task 9 started before arrival".into(),
            },
            TelemetryEvent::ProcessorDown {
                time: 3.5,
                processor: 2,
                displaced: 1,
            },
            TelemetryEvent::ProcessorUp {
                time: 4.5,
                processor: 2,
            },
            TelemetryEvent::TaskFailure {
                time: 5.0,
                task: 7,
                attempt: 1,
                lost_work: 2.25,
            },
            TelemetryEvent::RetryScheduled {
                time: 5.0,
                task: 7,
                attempt: 1,
                at: 5.5,
            },
            TelemetryEvent::SolverDegraded {
                solve_index: 3,
                solver: "mrt".into(),
                fallback: "list".into(),
                reason: "time budget".into(),
            },
            TelemetryEvent::ClassUtilization {
                class: "new".into(),
                busy: 18.5,
                capacity: 24.0,
            },
            TelemetryEvent::ClassMigration {
                time: 6.0,
                task: 11,
                from_class: "old".into(),
                to_class: "new".into(),
            },
            TelemetryEvent::Steal {
                time: 7.0,
                task: 13,
                from_shard: 2,
                to_shard: 0,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        for event in samples() {
            let line = serde_json::to_string(&event.to_json()).unwrap();
            let parsed = serde_json::from_str(&line).unwrap();
            assert_eq!(TelemetryEvent::from_json(&parsed), Some(event));
        }
    }

    #[test]
    fn unknown_or_malformed_records_parse_to_none() {
        let unknown = serde_json::from_str(r#"{"type": "warp", "time": 1.0}"#).unwrap();
        assert_eq!(TelemetryEvent::from_json(&unknown), None);
        let missing = serde_json::from_str(r#"{"type": "revoke", "time": 1.0}"#).unwrap();
        assert_eq!(TelemetryEvent::from_json(&missing), None);
        assert_eq!(TelemetryEvent::from_json(&json!([1, 2])), None);
    }
}
