//! Fixed-bucket log-scale histogram with exact percentile extraction at the
//! bucket resolution.
//!
//! The bucket layout follows the classic high-dynamic-range scheme: values
//! below `2^SUB_BITS` get one bucket each (exact), and every octave above
//! that is subdivided into `2^(SUB_BITS-1)` sub-buckets, giving a worst-case
//! relative resolution of `2^(1-SUB_BITS)` (≈ 3.1% with the 6 sub-bucket
//! bits used here) across the full `u64` range.  The bucket count is a
//! compile-time constant, so recording is a single index computation and an
//! increment — no allocation, no floating point.

/// Sub-bucket bits: values under `2^SUB_BITS` are exact; each octave above is
/// split into `2^(SUB_BITS-1)` sub-buckets.
const SUB_BITS: u32 = 6;
/// Buckets in the exact low range `[0, 2^SUB_BITS)`.
const EXACT_BUCKETS: usize = 1 << SUB_BITS;
/// Sub-buckets per octave above the exact range.
const OCTAVE_BUCKETS: usize = 1 << (SUB_BITS - 1);
/// Octaves needed to cover bit lengths `SUB_BITS+1 ..= 64`.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count (1920 with `SUB_BITS = 6`).
const NUM_BUCKETS: usize = EXACT_BUCKETS + OCTAVES * OCTAVE_BUCKETS;

/// Bucket index for a value: identity in the exact range, then
/// (octave, top mantissa bits) above it.
#[inline]
fn index_of(value: u64) -> usize {
    let bits = 64 - value.leading_zeros();
    if bits <= SUB_BITS {
        value as usize
    } else {
        let shift = bits - SUB_BITS;
        let sub = (value >> shift) as usize - OCTAVE_BUCKETS;
        EXACT_BUCKETS + (shift as usize - 1) * OCTAVE_BUCKETS + sub
    }
}

/// Lower bound of the value range covered by a bucket index.
#[inline]
fn bucket_low(index: usize) -> u64 {
    if index < EXACT_BUCKETS {
        index as u64
    } else {
        let k = index - EXACT_BUCKETS;
        let shift = (k / OCTAVE_BUCKETS + 1) as u32;
        ((OCTAVE_BUCKETS + k % OCTAVE_BUCKETS) as u64) << shift
    }
}

/// A fixed-size log-scale histogram over `u64` samples (canonically
/// nanoseconds, but any non-negative integer quantity works — probe counts
/// and hole-scan lengths use the same type).
///
/// Percentiles are extracted by nearest rank: [`LogHistogram::quantile`]
/// returns the lower bound of the bucket containing the rank-`⌈q·n⌉` sample,
/// which is within one bucket width (≤ 3.2% relative error) of the exact
/// order statistic.  Two histograms [`merge`](LogHistogram::merge) losslessly:
/// the merge equals the histogram of the concatenated sample streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[index_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (exact), or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (exact sum / count), or 0.0
    /// when empty.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, `q ∈ [0, 1]`: the lower bound of the bucket
    /// containing the sample of rank `⌈q·n⌉` (rank 1 for `q = 0`).
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_low(index);
            }
        }
        self.max
    }

    /// The median (p50) by nearest rank, at bucket resolution.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile by nearest rank, at bucket resolution.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile by nearest rank, at bucket resolution.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self`.  The result is identical to
    /// the histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The bucket index a value falls into — exposed so tests can assert the
    /// "same bucket as the exact order statistic" contract.
    pub fn bucket_index(value: u64) -> usize {
        index_of(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive nearest-rank quantile over the raw samples.
    fn oracle(samples: &[u64], q: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every bucket's lower bound must map back to its own index, and the
        // predecessor of that bound must map to the previous bucket.
        for index in 0..NUM_BUCKETS {
            let low = bucket_low(index);
            assert_eq!(index_of(low), index, "low {low} not in bucket {index}");
            if index > 0 {
                assert_eq!(index_of(low - 1), index - 1);
            }
        }
        assert_eq!(index_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_range_is_exact() {
        let mut hist = LogHistogram::new();
        for v in 0..EXACT_BUCKETS as u64 {
            hist.record(v);
        }
        assert_eq!(hist.quantile(0.0), 0);
        assert_eq!(hist.quantile(1.0), EXACT_BUCKETS as u64 - 1);
        assert_eq!(hist.p50(), (EXACT_BUCKETS as u64) / 2 - 1);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = LogHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.p50(), 0);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.mean(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Nearest-rank quantiles from the histogram land in the same bucket
        /// as the exact order statistic from a sorted-vector oracle — the
        /// "within bucket resolution" contract.
        #[test]
        fn quantiles_match_sorted_oracle(
            samples in prop::collection::vec(0u64..(1u64 << 44), 1..300),
            q in 0u64..=100,
        ) {
            let mut hist = LogHistogram::new();
            for &s in &samples {
                hist.record(s);
            }
            let q = q as f64 / 100.0;
            let exact = oracle(&samples, q);
            let approx = hist.quantile(q);
            prop_assert_eq!(
                LogHistogram::bucket_index(approx),
                LogHistogram::bucket_index(exact),
                "quantile {} returned {} (bucket {}), oracle {} (bucket {})",
                q, approx, LogHistogram::bucket_index(approx),
                exact, LogHistogram::bucket_index(exact)
            );
            prop_assert!(approx <= exact, "lower bucket bound must not exceed the sample");
        }

        /// Merging two histograms gives exactly the histogram of the
        /// concatenated sample streams.
        #[test]
        fn merge_equals_concatenation(
            left in prop::collection::vec(0u64..(1u64 << 44), 0..200),
            right in prop::collection::vec(0u64..(1u64 << 44), 0..200),
        ) {
            let mut a = LogHistogram::new();
            for &s in &left {
                a.record(s);
            }
            let mut b = LogHistogram::new();
            for &s in &right {
                b.record(s);
            }
            a.merge(&b);
            let mut concat = LogHistogram::new();
            for &s in left.iter().chain(right.iter()) {
                concat.record(s);
            }
            prop_assert_eq!(a, concat);
        }
    }
}
