//! Dependency-light observability layer for the malleable-scheduling stack.
//!
//! The crate provides four small building blocks, designed so the hot paths
//! of the online engine and the dual-approximation solver can stay
//! allocation-free when telemetry is disabled:
//!
//! * [`SpanTimer`] — the single monotonic clock source used by every wall-time
//!   measurement in the workspace (`SolveOutcome::wall_time`, engine decision
//!   latency, epoch solve spans).
//! * [`LogHistogram`] — a fixed-bucket log-scale histogram (no external
//!   dependencies, vendored-style) with exact p50/p90/p99 extraction at the
//!   bucket resolution and lossless merging.
//! * [`TelemetryEvent`] — structured event records (epoch solve start/end,
//!   placement, revocation, truncation, departure, invariant violation)
//!   that serialise to JSONL via the vendored `serde_json` and round-trip
//!   back through [`TelemetryEvent::from_json`].
//! * [`Recorder`] — the sink trait. [`NoopRecorder`] is the zero-cost
//!   default; [`CollectingRecorder`] accumulates events, named counters, and
//!   named histograms behind interior mutability so one instance can be
//!   shared between the engine and the planning policy.

#![warn(missing_docs)]

mod clock;
mod event;
mod histogram;
mod recorder;

pub use clock::SpanTimer;
pub use event::TelemetryEvent;
pub use histogram::LogHistogram;
pub use recorder::{names, CollectingRecorder, NoopRecorder, Recorder, SharedRecorder};
