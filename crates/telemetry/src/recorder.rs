//! The recorder trait and its two implementations.
//!
//! Instrumentation points receive a `&dyn Recorder` (or a cloned
//! [`SharedRecorder`] handle) and call [`Recorder::event`],
//! [`Recorder::add`], and [`Recorder::sample`].  The methods take `&self` so
//! one recorder can be shared between the engine and the planning policy;
//! [`CollectingRecorder`] synchronises internally, [`NoopRecorder`] does
//! nothing at all.  Call sites that must build a payload (format a string,
//! clone a solver name) should guard on [`Recorder::enabled`] first so the
//! disabled path stays allocation-free.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::event::TelemetryEvent;
use crate::histogram::LogHistogram;

/// Canonical counter and histogram names — the JSONL/summary schema.  Every
/// instrumentation point in the workspace uses these constants so reports,
/// gates, and tests never disagree on spelling.
pub mod names {
    /// Histogram: wall nanoseconds to process one engine event-loop iteration.
    pub const DECISION_NS: &str = "engine.decision_ns";
    /// Histogram: wall nanoseconds per epoch solve span.
    pub const SOLVE_NS: &str = "engine.solve_ns";
    /// Histogram: oracle probes per epoch solve.
    pub const SOLVE_PROBES: &str = "solver.probes";
    /// Histogram: reservation-timeline holes scanned per placement query.
    pub const HOLE_SCAN: &str = "timeline.hole_scan";
    /// Counter: engine event-loop iterations processed.
    pub const EVENTS: &str = "engine.events";
    /// Counter: commitments placed on the reservation timeline.
    pub const PLACEMENTS: &str = "engine.placements";
    /// Counter: placements that filled a hole before the committed frontier.
    pub const BACKFILLS: &str = "engine.backfills";
    /// Counter: queued commitments revoked during preemptive replanning.
    pub const REVOCATIONS: &str = "engine.revocations";
    /// Counter: running reservations truncated during re-allotment.
    pub const TRUNCATIONS: &str = "engine.truncations";
    /// Counter: tasks that finished executing.
    pub const COMPLETIONS: &str = "engine.completions";
    /// Counter: tasks that departed the system.
    pub const DEPARTURES: &str = "engine.departures";
    /// Counter: planning rounds the policy was asked for.
    pub const REPLANS: &str = "engine.replans";
    /// Counter: wall nanoseconds for the whole engine run.
    pub const RUN_NS: &str = "engine.run_ns";
    /// Counter: engine invariant violations (CI gates on zero).
    pub const INVARIANT_VIOLATIONS: &str = "engine.invariant_violations";
    /// Counter: oracle probes issued through the reusable `ProbeWorkspace`.
    pub const WORKSPACE_PROBES: &str = "workspace.probes";
    /// Counter: `ProbeWorkspace` buffer growth events (zero in steady state).
    pub const WORKSPACE_GROW_EVENTS: &str = "workspace.grow_events";
    /// Counter: reservations placed on machine timelines.
    pub const TIMELINE_RESERVATIONS: &str = "timeline.reservations";
    /// Counter: reservations cancelled on machine timelines.
    pub const TIMELINE_CANCELS: &str = "timeline.cancels";
    /// Counter: reservations truncated on machine timelines.
    pub const TIMELINE_TRUNCATIONS: &str = "timeline.truncations";
    /// Counter: hole candidates examined across all placement queries.
    pub const TIMELINE_HOLES_SCANNED: &str = "timeline.holes_scanned";
    /// Counter: processor crashes applied to the machine (fault runs).
    pub const PROCESSOR_DOWNS: &str = "engine.processor_downs";
    /// Counter: processor repairs applied to the machine (fault runs).
    pub const PROCESSOR_UPS: &str = "engine.processor_ups";
    /// Counter: task attempts killed by injected faults.
    pub const TASK_FAILURES: &str = "engine.task_failures";
    /// Counter: retries scheduled for failed task attempts.
    pub const RETRIES_SCHEDULED: &str = "engine.retries_scheduled";
    /// Counter: tasks abandoned after exhausting their retry budget.
    pub const RETRIES_EXHAUSTED: &str = "engine.retries_exhausted";
    /// Counter: epoch solves degraded from the primary to the fallback
    /// solver.
    pub const SOLVER_DEGRADED: &str = "solver.degraded";
    /// Counter: queued tasks re-assigned between machine classes by an
    /// epoch re-solve of the classed engine.
    pub const CLASS_MIGRATIONS: &str = "engine.class_migrations";
    /// Counter: queued tasks moved between shards by the work-stealing
    /// rebalance at epoch boundaries (sharded engine).
    pub const STEALS: &str = "engine.steals";
    /// Counter: epoch boundaries served by structural delta-planning — the
    /// preemptive revocation pass was skipped because the epoch added only
    /// new arrivals, so the policy planned them against the surviving
    /// schedule instead of re-solving the whole backlog.
    pub const DELTA_PLANS: &str = "engine.delta_plans";
    /// Counter: epoch super-step rounds driven by the sharded coordinator.
    pub const SHARD_ROUNDS: &str = "engine.shard_rounds";
}

/// A sink for telemetry signals.
///
/// Implementations must be cheap to call and internally synchronised: the
/// engine and the policy may hold clones of the same [`SharedRecorder`].
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything.  Instrumentation points guard
    /// payload construction (string formatting, name cloning) on this so a
    /// disabled recorder costs one virtual call and nothing else.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one structured event.
    fn event(&self, event: TelemetryEvent);

    /// Adds `delta` to the named monotone counter.
    fn add(&self, counter: &'static str, delta: u64);

    /// Records one sample into the named log-scale histogram.
    fn sample(&self, histogram: &'static str, value: u64);
}

/// A recorder handle that can be cloned into policies and engines alike.
pub type SharedRecorder = Arc<dyn Recorder>;

/// The zero-cost default recorder: drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn event(&self, _event: TelemetryEvent) {}

    #[inline]
    fn add(&self, _counter: &'static str, _delta: u64) {}

    #[inline]
    fn sample(&self, _histogram: &'static str, _value: u64) {}
}

#[derive(Debug, Default)]
struct Collected {
    events: Vec<TelemetryEvent>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

/// A recorder that accumulates everything in memory behind a mutex.
///
/// The engine run is single-threaded, so the mutex is uncontended; it exists
/// so the same handle can be cloned into the policy (via `PolicyOptions`)
/// and the engine without `&mut` plumbing.
#[derive(Debug, Default)]
pub struct CollectingRecorder {
    inner: Mutex<Collected>,
}

impl CollectingRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder already wrapped in a [`SharedRecorder`]-able
    /// `Arc`, for call sites that clone the handle into a policy.
    pub fn shared() -> Arc<CollectingRecorder> {
        Arc::new(Self::new())
    }

    /// A copy of every structured event recorded so far, in order.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// The value of a named counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// A snapshot of all counters, keyed by canonical name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner
            .lock()
            .unwrap()
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect()
    }

    /// A copy of the named histogram, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.inner.lock().unwrap().histograms.get(name).cloned()
    }

    /// Number of recorded [`TelemetryEvent::InvariantViolation`] events plus
    /// the invariant-violation counter — the quantity CI gates to zero.
    pub fn invariant_violations(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        let from_events = inner
            .events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::InvariantViolation { .. }))
            .count() as u64;
        let from_counter = inner
            .counters
            .get(names::INVARIANT_VIOLATIONS)
            .copied()
            .unwrap_or(0);
        from_events.max(from_counter)
    }

    /// Writes the event stream as JSONL: one [`TelemetryEvent::to_json`]
    /// object per line, in recording order.
    pub fn write_jsonl<W: Write>(&self, out: &mut W) -> io::Result<()> {
        for event in self.inner.lock().unwrap().events.iter() {
            let line = serde_json::to_string(&event.to_json())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

impl Recorder for CollectingRecorder {
    fn event(&self, event: TelemetryEvent) {
        self.inner.lock().unwrap().events.push(event);
    }

    fn add(&self, counter: &'static str, delta: u64) {
        *self
            .inner
            .lock()
            .unwrap()
            .counters
            .entry(counter)
            .or_insert(0) += delta;
    }

    fn sample(&self, histogram: &'static str, value: u64) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(histogram)
            .or_default()
            .record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_recorder_accumulates_everything() {
        let recorder = CollectingRecorder::new();
        recorder.add(names::EVENTS, 2);
        recorder.add(names::EVENTS, 3);
        recorder.sample(names::DECISION_NS, 100);
        recorder.sample(names::DECISION_NS, 200);
        recorder.event(TelemetryEvent::Complete { time: 1.0, task: 7 });
        assert_eq!(recorder.counter(names::EVENTS), 5);
        assert_eq!(recorder.counter("never.touched"), 0);
        let hist = recorder.histogram(names::DECISION_NS).unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(recorder.events().len(), 1);
        assert_eq!(recorder.invariant_violations(), 0);
    }

    #[test]
    fn jsonl_stream_round_trips() {
        let recorder = CollectingRecorder::new();
        recorder.event(TelemetryEvent::Complete { time: 1.5, task: 3 });
        recorder.event(TelemetryEvent::Depart {
            time: 2.5,
            task: 3,
            completed: true,
        });
        let mut buffer = Vec::new();
        recorder.write_jsonl(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let parsed: Vec<TelemetryEvent> = text
            .lines()
            .map(|line| TelemetryEvent::from_json(&serde_json::from_str(line).unwrap()).unwrap())
            .collect();
        assert_eq!(parsed, recorder.events());
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let noop = NoopRecorder;
        assert!(!noop.enabled());
        noop.add(names::EVENTS, 1);
        noop.sample(names::DECISION_NS, 1);
        noop.event(TelemetryEvent::Complete { time: 0.0, task: 0 });
    }

    #[test]
    fn invariant_violations_counts_events_and_counter() {
        let recorder = CollectingRecorder::new();
        recorder.event(TelemetryEvent::InvariantViolation {
            time: 0.0,
            detail: "boom".into(),
        });
        recorder.add(names::INVARIANT_VIOLATIONS, 1);
        assert_eq!(recorder.invariant_violations(), 1);
    }
}
