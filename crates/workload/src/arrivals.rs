//! Arrival traces: malleable tasks arriving over time.
//!
//! The offline model of the paper schedules a fixed task set; the online
//! engine (crate `online`) instead consumes a stream of arrivals.  This
//! module provides the trace model, deterministic generators for the two
//! standard traffic shapes — Poisson arrivals (independent exponential
//! inter-arrival times) and bursty arrivals (synchronised batches, the shape
//! produced by periodic submission systems) — and a JSON representation so
//! traces can be saved and replayed exactly.
//!
//! Arrivals may also carry a **departure deadline** ([`Arrival::departs_at`]):
//! a task that has not started by its deadline leaves the system
//! (cancellation), which is how impatient users and revoked cloud jobs show
//! up in a trace.  [`ArrivalTrace::with_departures`] attaches deterministic,
//! seed-derived deadlines to a generated trace.
//!
//! Generation is a pure function of the [`TraceConfig`]: the task profiles
//! come from the deterministic [`WorkloadGenerator`] and the arrival clock
//! from an independent, seed-derived stream, so a `(config, seed)` pair
//! always produces the same trace.

use crate::generator::{TaskStream, WorkloadConfig, WorkloadGenerator};
use crate::io::task_from_value;
use malleable_core::{Instance, MalleableTask, Result};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::{json, Value};

/// One task arriving at a point in time, optionally departing again.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival (release) time of the task.
    pub at: f64,
    /// The task itself.
    pub task: MalleableTask,
    /// Departure (cancellation) deadline: if the task has not *started* by
    /// this time it leaves the system and is never executed.  A task that
    /// started before its departure runs to completion (non-preemptive
    /// execution).  `None` means the task waits forever.
    pub departs_at: Option<f64>,
}

impl Arrival {
    /// A task arriving at `at` with no departure deadline.
    pub fn new(at: f64, task: MalleableTask) -> Self {
        Arrival {
            at,
            task,
            departs_at: None,
        }
    }

    /// Attach a departure deadline (builder style).
    pub fn departing_at(mut self, departs_at: f64) -> Self {
        self.departs_at = Some(departs_at);
        self
    }
}

/// How departure deadlines are attached to a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeparturePolicy {
    /// Every task waits an exponentially distributed patience with the given
    /// mean before departing (sampled deterministically from the seed).
    Patience {
        /// Mean patience (must be positive and finite).
        mean: f64,
    },
}

/// A stream of task arrivals targeting a machine with a fixed processor
/// count.  Arrivals are kept sorted by time; the index of an arrival is the
/// task's identifier in every schedule the online engine produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    processors: usize,
    arrivals: Vec<Arrival>,
}

/// The arrival-time process of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Poisson process: exponential inter-arrival times with the given rate
    /// (expected arrivals per unit of time).
    Poisson {
        /// Expected number of arrivals per unit of time (must be positive).
        rate: f64,
    },
    /// Bursty arrivals: groups of `burst_size` tasks arrive simultaneously,
    /// one group every `burst_gap` units of time starting at time 0.
    Bursty {
        /// Number of tasks arriving together in each burst (≥ 1).
        burst_size: usize,
        /// Time between consecutive bursts (must be positive).
        burst_gap: f64,
    },
}

impl ArrivalPattern {
    /// Stable name used by reports and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPattern::Poisson { .. } => "poisson",
            ArrivalPattern::Bursty { .. } => "bursty",
        }
    }

    /// Check the pattern's parameters (positive rate / gap, non-empty
    /// bursts).
    pub fn validate(&self) -> Result<()> {
        match *self {
            ArrivalPattern::Poisson { rate } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(malleable_core::Error::InvalidParameter {
                        name: "rate",
                        value: rate,
                    });
                }
            }
            ArrivalPattern::Bursty {
                burst_size,
                burst_gap,
            } => {
                if burst_size == 0 {
                    return Err(malleable_core::Error::InvalidParameter {
                        name: "burst-size",
                        value: 0.0,
                    });
                }
                if !(burst_gap.is_finite() && burst_gap > 0.0) {
                    return Err(malleable_core::Error::InvalidParameter {
                        name: "burst-gap",
                        value: burst_gap,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Full description of a generated trace: the task population (profiles,
/// machine, seed) plus the arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// The task population; `workload.seed` also seeds the arrival clock.
    pub workload: WorkloadConfig,
    /// The arrival-time process.
    pub pattern: ArrivalPattern,
}

impl ArrivalTrace {
    /// Build a trace, sorting the arrivals by time and validating that the
    /// machine is non-trivial and every arrival time is finite and
    /// non-negative.
    pub fn new(processors: usize, mut arrivals: Vec<Arrival>) -> Result<Self> {
        if processors == 0 {
            return Err(malleable_core::Error::NoProcessors);
        }
        if arrivals.is_empty() {
            return Err(malleable_core::Error::EmptyInstance);
        }
        for arrival in &arrivals {
            if !(arrival.at.is_finite() && arrival.at >= 0.0) {
                return Err(malleable_core::Error::InvalidParameter {
                    name: "arrival",
                    value: arrival.at,
                });
            }
            if let Some(departs_at) = arrival.departs_at {
                if !(departs_at.is_finite() && departs_at >= arrival.at) {
                    return Err(malleable_core::Error::InvalidParameter {
                        name: "departure",
                        value: departs_at,
                    });
                }
            }
        }
        arrivals.sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap());
        Ok(ArrivalTrace {
            processors,
            arrivals,
        })
    }

    /// Generate the trace described by `config` (deterministic per seed).
    pub fn generate(config: &TraceConfig) -> Result<Self> {
        config.pattern.validate()?;
        let instance = WorkloadGenerator::new(config.workload.clone()).generate()?;
        // Derive the arrival clock from an independent stream so the same
        // task population can be re-used under different arrival patterns
        // without correlating profiles and arrival times.
        let mut rng = ChaCha8Rng::seed_from_u64(config.workload.seed ^ 0xA5A5_5A5A_0F0F_F0F0);
        let times = sample_arrival_times(&config.pattern, instance.task_count(), &mut rng);
        let arrivals = instance
            .tasks()
            .iter()
            .zip(times)
            .map(|(task, at)| Arrival::new(at, task.clone()))
            .collect();
        ArrivalTrace::new(config.workload.processors, arrivals)
    }

    /// Attach departure deadlines to every arrival, sampled deterministically
    /// from `seed` (an independent stream, so the same trace can be replayed
    /// under different departure policies).
    pub fn with_departures(mut self, policy: DeparturePolicy, seed: u64) -> Result<Self> {
        use rand::Rng;
        let DeparturePolicy::Patience { mean } = policy;
        if !(mean.is_finite() && mean > 0.0) {
            return Err(malleable_core::Error::InvalidParameter {
                name: "patience",
                value: mean,
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_DEAD_BEEF_CAFE);
        for arrival in &mut self.arrivals {
            let u: f64 = rng.gen();
            let patience = -(1.0 - u).ln() * mean;
            arrival.departs_at = Some(arrival.at + patience);
        }
        Ok(self)
    }

    /// Whether any arrival carries a departure deadline.
    pub fn has_departures(&self) -> bool {
        self.arrivals.iter().any(|a| a.departs_at.is_some())
    }

    /// Number of processors of the target machine.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The arrivals, sorted by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrival time of the last task.
    pub fn last_arrival(&self) -> f64 {
        self.arrivals.last().map(|a| a.at).unwrap_or(0.0)
    }

    /// The offline view of the trace: every task released at time 0.  Task
    /// `j` of the instance is arrival `j` of the trace, so offline and online
    /// schedules use the same task identifiers.
    pub fn instance(&self) -> Result<Instance> {
        Instance::new(
            self.arrivals.iter().map(|a| a.task.clone()).collect(),
            self.processors,
        )
    }
}

/// A lazy arrival stream: yields the arrivals of
/// [`ArrivalTrace::generate`] one at a time, in trace order, without
/// materialising the task population or the trace.
///
/// Tasks come from the same seeded [`TaskStream`] the generator collects and
/// arrival times from the same independent clock stream, and both patterns
/// produce non-decreasing times (a Poisson clock accumulates, bursts step
/// forward), so the stream's order *is* the sorted trace order: arrival `j`
/// of the stream is arrival `j` of the materialised trace, bit for bit.
/// This is the ingestion path for million-task traces — the sharded online
/// engine batches directly off it.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    tasks: TaskStream,
    pattern: ArrivalPattern,
    clock_rng: ChaCha8Rng,
    clock: f64,
    index: usize,
    processors: usize,
}

impl ArrivalStream {
    /// Open the stream described by `config` (deterministic per seed;
    /// validates the pattern and the machine up front).
    pub fn new(config: &TraceConfig) -> Result<Self> {
        config.pattern.validate()?;
        if config.workload.processors == 0 {
            return Err(malleable_core::Error::NoProcessors);
        }
        if config.workload.tasks == 0 {
            return Err(malleable_core::Error::EmptyInstance);
        }
        Ok(ArrivalStream {
            tasks: WorkloadGenerator::new(config.workload.clone()).stream(),
            pattern: config.pattern,
            clock_rng: ChaCha8Rng::seed_from_u64(config.workload.seed ^ 0xA5A5_5A5A_0F0F_F0F0),
            clock: 0.0,
            index: 0,
            processors: config.workload.processors,
        })
    }

    /// Number of processors of the target machine.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Total number of arrivals this stream yields over its lifetime.
    pub fn total(&self) -> usize {
        self.tasks.total()
    }
}

impl Iterator for ArrivalStream {
    type Item = Result<Arrival>;

    fn next(&mut self) -> Option<Self::Item> {
        use rand::Rng;
        let task = match self.tasks.next()? {
            Ok(task) => task,
            Err(e) => return Some(Err(e)),
        };
        let at = match self.pattern {
            ArrivalPattern::Poisson { rate } => {
                let u: f64 = self.clock_rng.gen();
                self.clock += -(1.0 - u).ln() / rate;
                self.clock
            }
            ArrivalPattern::Bursty {
                burst_size,
                burst_gap,
            } => (self.index / burst_size) as f64 * burst_gap,
        };
        self.index += 1;
        Some(Ok(Arrival::new(at, task)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.tasks.size_hint()
    }
}

impl ExactSizeIterator for ArrivalStream {}

fn sample_arrival_times(pattern: &ArrivalPattern, count: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    use rand::Rng;
    match *pattern {
        ArrivalPattern::Poisson { rate } => {
            assert!(
                rate.is_finite() && rate > 0.0,
                "Poisson rate must be positive, got {rate}"
            );
            let mut clock = 0.0f64;
            (0..count)
                .map(|_| {
                    let u: f64 = rng.gen();
                    clock += -(1.0 - u).ln() / rate;
                    clock
                })
                .collect()
        }
        ArrivalPattern::Bursty {
            burst_size,
            burst_gap,
        } => {
            assert!(burst_size >= 1, "burst size must be at least 1");
            assert!(
                burst_gap.is_finite() && burst_gap > 0.0,
                "burst gap must be positive, got {burst_gap}"
            );
            (0..count)
                .map(|i| (i / burst_size) as f64 * burst_gap)
                .collect()
        }
    }
}

/// Serialise a trace to a compact JSON string (traces can hold tens of
/// thousands of tasks, so no pretty-printing).
pub fn trace_to_json(trace: &ArrivalTrace) -> String {
    let arrivals: Vec<Value> = trace
        .arrivals()
        .iter()
        .map(|a| match a.departs_at {
            Some(departs_at) => json!({
                "at": a.at,
                "name": a.task.name.clone(),
                "times": a.task.profile.times().to_vec(),
                "departs_at": departs_at,
            }),
            None => json!({
                "at": a.at,
                "name": a.task.name.clone(),
                "times": a.task.profile.times().to_vec(),
            }),
        })
        .collect();
    let doc = json!({
        "processors": trace.processors(),
        "arrivals": arrivals,
    });
    serde_json::to_string(&doc).expect("trace serialisation cannot fail")
}

/// Parse a trace from its JSON representation, re-validating every profile
/// and arrival time.
pub fn trace_from_json(json: &str) -> Result<ArrivalTrace> {
    let invalid = || malleable_core::Error::InvalidParameter {
        name: "json",
        value: f64::NAN,
    };
    let doc = serde_json::from_str(json).map_err(|_| invalid())?;
    let processors = doc
        .get("processors")
        .and_then(Value::as_u64)
        .ok_or_else(invalid)? as usize;
    let arrivals = doc
        .get("arrivals")
        .and_then(Value::as_array)
        .ok_or_else(invalid)?
        .iter()
        .map(|entry| {
            let at = entry
                .get("at")
                .and_then(Value::as_f64)
                .ok_or_else(invalid)?;
            let departs_at = match entry.get("departs_at") {
                Some(value) => Some(value.as_f64().ok_or_else(invalid)?),
                None => None,
            };
            Ok(Arrival {
                at,
                task: task_from_value(entry)?,
                departs_at,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    ArrivalTrace::new(processors, arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::SpeedupProfile;

    fn poisson_config(tasks: usize, seed: u64) -> TraceConfig {
        TraceConfig {
            workload: WorkloadConfig::mixed(tasks, 8, seed),
            pattern: ArrivalPattern::Poisson { rate: 2.0 },
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ArrivalTrace::generate(&poisson_config(30, 9)).unwrap();
        let b = ArrivalTrace::generate(&poisson_config(30, 9)).unwrap();
        let c = ArrivalTrace::generate(&poisson_config(30, 10)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_positive() {
        let trace = ArrivalTrace::generate(&poisson_config(50, 1)).unwrap();
        assert_eq!(trace.len(), 50);
        let mut prev = 0.0;
        for arrival in trace.arrivals() {
            assert!(arrival.at >= prev);
            assert!(arrival.at > 0.0);
            prev = arrival.at;
        }
        // Mean inter-arrival should be in the ballpark of 1/rate = 0.5.
        let mean = trace.last_arrival() / trace.len() as f64;
        assert!((0.2..1.0).contains(&mean), "mean inter-arrival {mean}");
    }

    #[test]
    fn bursty_arrivals_form_synchronised_groups() {
        let config = TraceConfig {
            workload: WorkloadConfig::mixed(10, 4, 3),
            pattern: ArrivalPattern::Bursty {
                burst_size: 4,
                burst_gap: 5.0,
            },
        };
        let trace = ArrivalTrace::generate(&config).unwrap();
        let times: Vec<f64> = trace.arrivals().iter().map(|a| a.at).collect();
        assert_eq!(
            times,
            vec![0.0, 0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 5.0, 10.0, 10.0]
        );
    }

    #[test]
    fn streaming_reproduces_generation_bit_for_bit() {
        for config in [
            poisson_config(60, 11),
            TraceConfig {
                workload: WorkloadConfig::wide_tasks(45, 16, 4),
                pattern: ArrivalPattern::Bursty {
                    burst_size: 7,
                    burst_gap: 3.0,
                },
            },
        ] {
            let trace = ArrivalTrace::generate(&config).unwrap();
            let stream = ArrivalStream::new(&config).unwrap();
            assert_eq!(stream.processors(), trace.processors());
            assert_eq!(stream.total(), trace.len());
            let streamed: Vec<Arrival> = stream.map(|a| a.unwrap()).collect();
            assert_eq!(streamed, trace.arrivals(), "{:?}", config.pattern);
        }
        // Degenerate configs are rejected at open time like at generate time.
        let mut bad = poisson_config(10, 1);
        bad.pattern = ArrivalPattern::Poisson { rate: 0.0 };
        assert!(ArrivalStream::new(&bad).is_err());
        let mut empty = poisson_config(10, 1);
        empty.workload.tasks = 0;
        assert!(ArrivalStream::new(&empty).is_err());
    }

    #[test]
    fn json_round_trip_preserves_traces() {
        let trace = ArrivalTrace::generate(&poisson_config(20, 5)).unwrap();
        let json = trace_to_json(&trace);
        let parsed = trace_from_json(&json).unwrap();
        assert_eq!(parsed.processors(), trace.processors());
        assert_eq!(parsed.len(), trace.len());
        for (a, b) in trace.arrivals().iter().zip(parsed.arrivals()) {
            assert_eq!(a.task.name, b.task.name);
            assert_eq!(a.at, b.at, "arrival times must round-trip exactly");
            assert_eq!(a.task.profile.times(), b.task.profile.times());
        }
    }

    #[test]
    fn malformed_trace_documents_are_rejected() {
        assert!(trace_from_json("{ nope").is_err());
        assert!(trace_from_json(r#"{ "processors": 2 }"#).is_err());
        assert!(
            trace_from_json(r#"{ "processors": 2, "arrivals": [{ "at": -1.0, "times": [1.0] }] }"#)
                .is_err(),
            "negative arrival times must be rejected"
        );
        assert!(
            trace_from_json(
                r#"{ "processors": 2, "arrivals": [{ "at": 0.0, "times": [1.0, 2.0] }] }"#
            )
            .is_err(),
            "non-monotone profiles must be rejected"
        );
    }

    #[test]
    fn instance_view_uses_trace_order() {
        let arrivals = vec![
            Arrival::new(
                3.0,
                MalleableTask::named("late", SpeedupProfile::sequential(1.0).unwrap()),
            ),
            Arrival::new(
                1.0,
                MalleableTask::named("early", SpeedupProfile::sequential(2.0).unwrap()),
            ),
        ];
        let trace = ArrivalTrace::new(2, arrivals).unwrap();
        // Sorted by arrival: "early" first.
        assert_eq!(trace.arrivals()[0].task.name.as_deref(), Some("early"));
        let instance = trace.instance().unwrap();
        assert_eq!(instance.task(0).name.as_deref(), Some("early"));
        assert_eq!(instance.task(1).name.as_deref(), Some("late"));
    }

    #[test]
    fn degenerate_patterns_are_rejected_not_panicking() {
        for pattern in [
            ArrivalPattern::Poisson { rate: 0.0 },
            ArrivalPattern::Poisson { rate: -1.0 },
            ArrivalPattern::Poisson { rate: f64::NAN },
            ArrivalPattern::Bursty {
                burst_size: 0,
                burst_gap: 1.0,
            },
            ArrivalPattern::Bursty {
                burst_size: 4,
                burst_gap: 0.0,
            },
        ] {
            let config = TraceConfig {
                workload: WorkloadConfig::mixed(5, 2, 1),
                pattern,
            };
            assert!(
                ArrivalTrace::generate(&config).is_err(),
                "{pattern:?} must be rejected"
            );
        }
    }

    #[test]
    fn trace_construction_validates_inputs() {
        assert!(ArrivalTrace::new(0, vec![]).is_err());
        assert!(ArrivalTrace::new(2, vec![]).is_err());
        let bad = vec![Arrival::new(
            f64::NAN,
            MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
        )];
        assert!(ArrivalTrace::new(2, bad).is_err());
        // Departures before the arrival (or non-finite) are rejected.
        let task = || MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap());
        assert!(ArrivalTrace::new(2, vec![Arrival::new(2.0, task()).departing_at(1.0)]).is_err());
        assert!(
            ArrivalTrace::new(2, vec![Arrival::new(2.0, task()).departing_at(f64::NAN)]).is_err()
        );
        assert!(ArrivalTrace::new(2, vec![Arrival::new(2.0, task()).departing_at(2.0)]).is_ok());
    }

    #[test]
    fn departures_are_deterministic_and_respect_arrivals() {
        let base = ArrivalTrace::generate(&poisson_config(40, 6)).unwrap();
        let policy = DeparturePolicy::Patience { mean: 2.0 };
        let a = base.clone().with_departures(policy, 9).unwrap();
        let b = base.clone().with_departures(policy, 9).unwrap();
        let c = base.clone().with_departures(policy, 10).unwrap();
        assert_eq!(a, b, "same seed, same deadlines");
        assert_ne!(a, c, "different seed, different deadlines");
        assert!(a.has_departures() && !base.has_departures());
        for arrival in a.arrivals() {
            let d = arrival.departs_at.unwrap();
            assert!(
                d >= arrival.at,
                "departure {d} before arrival {}",
                arrival.at
            );
        }
        assert!(base
            .with_departures(DeparturePolicy::Patience { mean: 0.0 }, 1)
            .is_err());
    }

    #[test]
    fn departures_round_trip_through_json() {
        let trace = ArrivalTrace::generate(&poisson_config(15, 3))
            .unwrap()
            .with_departures(DeparturePolicy::Patience { mean: 1.5 }, 3)
            .unwrap();
        let parsed = trace_from_json(&trace_to_json(&trace)).unwrap();
        assert_eq!(parsed, trace, "departure deadlines must round-trip exactly");
        // Malformed departures are rejected at parse time.
        assert!(trace_from_json(
            r#"{ "processors": 2, "arrivals": [{ "at": 1.0, "times": [1.0], "departs_at": 0.5 }] }"#
        )
        .is_err());
        assert!(trace_from_json(
            r#"{ "processors": 2, "arrivals": [{ "at": 1.0, "times": [1.0], "departs_at": "x" }] }"#
        )
        .is_err());
    }
}
