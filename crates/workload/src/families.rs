//! Monotone speed-up families.

use malleable_core::{Result, SpeedupProfile};

/// A parametric family of monotone speed-up curves.
///
/// Every variant maps a *sequential work* `w` (the execution time on one
/// processor) to a full profile on `1..=m` processors.  All produced profiles
/// satisfy the monotone assumptions of the paper (§2.1): non-increasing time
/// and non-decreasing work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedupFamily {
    /// Perfect linear speed-up: `t(p) = w / p`.
    Linear,
    /// No speed-up at all: the task runs on one processor.
    Sequential,
    /// Amdahl's law with sequential fraction `alpha`:
    /// `t(p) = w · (alpha + (1 − alpha)/p)`.
    Amdahl {
        /// Fraction of the work that cannot be parallelised, in `[0, 1]`.
        alpha: f64,
    },
    /// Power-law (Downey-style) speed-up: `t(p) = w / p^sigma`.
    PowerLaw {
        /// Parallelisability exponent in `(0, 1]`; `1` is linear speed-up.
        sigma: f64,
    },
    /// Linear speed-up plus a linear communication overhead:
    /// `t(p) = w/p + overhead · (p − 1)`, repaired to stay monotone past the
    /// processor count where the overhead starts dominating.
    CommunicationOverhead {
        /// Overhead added per extra processor, as a fraction of `w`.
        overhead: f64,
    },
    /// Speed-up only at powers of two: `t(p) = w / 2^{⌊log2 p⌋·sigma}`.
    Step {
        /// Efficiency of each doubling, in `(0, 1]`.
        sigma: f64,
    },
}

impl SpeedupFamily {
    /// A short stable name used in benchmark reports.
    pub fn name(&self) -> &'static str {
        match self {
            SpeedupFamily::Linear => "linear",
            SpeedupFamily::Sequential => "sequential",
            SpeedupFamily::Amdahl { .. } => "amdahl",
            SpeedupFamily::PowerLaw { .. } => "power-law",
            SpeedupFamily::CommunicationOverhead { .. } => "comm-overhead",
            SpeedupFamily::Step { .. } => "step",
        }
    }

    /// Build the profile of a task with sequential work `w` on a machine of
    /// `m` processors.
    pub fn profile(&self, work: f64, m: usize) -> Result<SpeedupProfile> {
        assert!(work > 0.0 && work.is_finite(), "work must be positive");
        let m = m.max(1);
        match *self {
            SpeedupFamily::Sequential => SpeedupProfile::sequential(work),
            SpeedupFamily::Linear => SpeedupProfile::linear(work, m),
            SpeedupFamily::Amdahl { alpha } => {
                let a = alpha.clamp(0.0, 1.0);
                SpeedupProfile::from_fn(m, |p| work * (a + (1.0 - a) / p as f64))
            }
            SpeedupFamily::PowerLaw { sigma } => {
                let s = sigma.clamp(0.05, 1.0);
                SpeedupProfile::from_fn(m, |p| work / (p as f64).powf(s))
            }
            SpeedupFamily::CommunicationOverhead { overhead } => {
                let c = overhead.max(0.0) * work;
                SpeedupProfile::from_fn(m, |p| work / p as f64 + c * (p as f64 - 1.0))
            }
            SpeedupFamily::Step { sigma } => {
                let s = sigma.clamp(0.05, 1.0);
                SpeedupProfile::from_fn(m, |p| {
                    let levels = (p as f64).log2().floor();
                    work / 2f64.powf(levels * s)
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const FAMILIES: [SpeedupFamily; 6] = [
        SpeedupFamily::Linear,
        SpeedupFamily::Sequential,
        SpeedupFamily::Amdahl { alpha: 0.2 },
        SpeedupFamily::PowerLaw { sigma: 0.7 },
        SpeedupFamily::CommunicationOverhead { overhead: 0.02 },
        SpeedupFamily::Step { sigma: 0.9 },
    ];

    #[test]
    fn every_family_produces_valid_profiles() {
        for family in FAMILIES {
            let profile = family.profile(10.0, 16).unwrap();
            // Re-validating through the strict constructor must succeed.
            assert!(
                SpeedupProfile::new(profile.times().to_vec()).is_ok(),
                "family {} produced a non-monotone profile",
                family.name()
            );
            assert!((profile.time(1) - 10.0).abs() < 1e-9 || family.name() == "comm-overhead");
        }
    }

    #[test]
    fn amdahl_saturates_at_sequential_fraction() {
        let profile = SpeedupFamily::Amdahl { alpha: 0.25 }
            .profile(8.0, 64)
            .unwrap();
        // The asymptotic time is alpha·w = 2.0.
        assert!(profile.time(64) >= 2.0 - 1e-9);
        assert!(profile.time(64) < 2.3);
    }

    #[test]
    fn power_law_with_sigma_one_is_linear() {
        let pl = SpeedupFamily::PowerLaw { sigma: 1.0 }
            .profile(6.0, 8)
            .unwrap();
        let lin = SpeedupFamily::Linear.profile(6.0, 8).unwrap();
        for p in 1..=8 {
            assert!((pl.time(p) - lin.time(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn communication_overhead_never_speeds_up_past_optimum() {
        let profile = SpeedupFamily::CommunicationOverhead { overhead: 0.1 }
            .profile(4.0, 32)
            .unwrap();
        // Times are non-increasing even though the raw formula turns upward.
        for p in 2..=32 {
            assert!(profile.time(p) <= profile.time(p - 1) + 1e-9);
        }
    }

    #[test]
    fn step_profile_improves_only_at_powers_of_two() {
        let profile = SpeedupFamily::Step { sigma: 1.0 }.profile(8.0, 8).unwrap();
        assert!((profile.time(2) - profile.time(3)).abs() < 1e-9);
        assert!(profile.time(4) < profile.time(3) - 1e-9);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = FAMILIES.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec![
                "linear",
                "sequential",
                "amdahl",
                "power-law",
                "comm-overhead",
                "step"
            ]
        );
    }

    proptest! {
        /// All families produce monotone profiles for arbitrary parameters.
        #[test]
        fn profiles_always_monotone(
            work in 0.1f64..50.0,
            m in 1usize..64,
            alpha in 0.0f64..1.0,
            sigma in 0.05f64..1.0,
            overhead in 0.0f64..0.5,
        ) {
            let families = [
                SpeedupFamily::Linear,
                SpeedupFamily::Sequential,
                SpeedupFamily::Amdahl { alpha },
                SpeedupFamily::PowerLaw { sigma },
                SpeedupFamily::CommunicationOverhead { overhead },
                SpeedupFamily::Step { sigma },
            ];
            for family in families {
                let profile = family.profile(work, m).unwrap();
                prop_assert!(SpeedupProfile::new(profile.times().to_vec()).is_ok());
            }
        }
    }
}
