//! Deterministic fault injection for the online engine.
//!
//! Real clusters lose processors, kill tasks, and occasionally watch their
//! planning oracle time out.  This module models all three as a **seeded,
//! pre-drawn [`FaultPlan`]** so a faulty run is exactly reproducible: two
//! plans generated from the same [`FaultConfig`] are identical, and the
//! engine consumes the plan without ever touching an RNG of its own.
//!
//! Three fault classes are covered:
//!
//! * **processor outages** — per-processor crash/repair [`Outage`] intervals
//!   drawn from exponential MTBF/MTTR distributions over a finite horizon.
//!   Processor 0 is never taken down, so the machine always keeps at least
//!   one online processor and every retried task eventually fits;
//! * **task failures** — per-(task, attempt) failure *fractions*: attempt
//!   `a` of task `i` dies after executing `fraction · duration` of its
//!   committed segment, and the work of that segment is lost (the retry
//!   restarts from the remaining fraction at segment start);
//! * **solver faults** — the index of one epoch solve that is forced to
//!   fail, consumed by the `solver` crate's fault-injecting wrapper.
//!
//! Failed attempts are retried under a [`RetryPolicy`] with capped
//! exponential backoff and a max-attempts bound; a task that exhausts its
//! attempts is *abandoned* (accounted, never silently dropped).

use malleable_core::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One crash/repair interval of one processor: the processor is offline
/// over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Processor index.
    pub processor: usize,
    /// Crash time.
    pub start: f64,
    /// Repair time (`f64::INFINITY` when the processor never comes back
    /// within the run — the engine clamps at the makespan).
    pub end: f64,
}

impl Outage {
    /// Whether `[from, to)` intersects the outage interval.
    pub fn overlaps(&self, from: f64, to: f64) -> bool {
        from < self.end - 1e-9 && to > self.start + 1e-9
    }
}

/// Retry discipline for failed task attempts: capped exponential backoff
/// with a hard attempts bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of attempts per task (first execution included).  A
    /// task whose `max_attempts`-th attempt fails is abandoned.
    pub max_attempts: usize,
    /// Backoff before the first retry, in simulated time units.
    pub base_backoff: f64,
    /// Multiplier applied per additional failure.
    pub multiplier: f64,
    /// Ceiling on any single backoff.
    pub max_backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 0.5,
            multiplier: 2.0,
            max_backoff: 8.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before the retry that follows the `failures`-th failure
    /// (1-based): `base · multiplier^(failures−1)`, capped at
    /// `max_backoff`.
    pub fn backoff(&self, failures: usize) -> f64 {
        let exponent = failures.saturating_sub(1) as i32;
        (self.base_backoff * self.multiplier.powi(exponent)).min(self.max_backoff)
    }

    /// Reject non-positive, non-finite or degenerate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(Error::InvalidParameter {
                name: "max_attempts",
                value: 0.0,
            });
        }
        for (name, value) in [
            ("base_backoff", self.base_backoff),
            ("multiplier", self.multiplier),
            ("max_backoff", self.max_backoff),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(Error::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

/// Everything [`FaultPlan::generate`] needs: the machine and trace shape,
/// the fault intensities, and the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Number of processors of the machine the plan targets.
    pub processors: usize,
    /// Number of tasks of the trace the plan targets.
    pub tasks: usize,
    /// Horizon over which outages are drawn (outages never start past it).
    pub horizon: f64,
    /// Mean time between failures per processor (`None` disables crashes).
    pub mtbf: Option<f64>,
    /// Mean time to repair a crashed processor.
    pub mttr: f64,
    /// Probability that any given attempt of any given task fails.
    pub task_failure_rate: f64,
    /// Rows of the per-(task, attempt) failure table — attempts beyond this
    /// never fail, so it should be at least [`RetryPolicy::max_attempts`].
    pub max_attempts: usize,
    /// Force the `n`-th epoch solve (0-based) to fault.
    pub solver_fault_epoch: Option<usize>,
    /// RNG seed; equal configs generate equal plans.
    pub seed: u64,
}

impl FaultConfig {
    /// A quiet config (no crashes, no task failures, no solver fault) — the
    /// builder methods below switch individual fault classes on.
    pub fn new(processors: usize, tasks: usize, horizon: f64, seed: u64) -> Self {
        FaultConfig {
            processors,
            tasks,
            horizon,
            mtbf: None,
            mttr: 1.0,
            task_failure_rate: 0.0,
            max_attempts: RetryPolicy::default().max_attempts,
            solver_fault_epoch: None,
            seed,
        }
    }

    /// Enable processor crashes with the given MTBF/MTTR means.
    pub fn with_crashes(mut self, mtbf: f64, mttr: f64) -> Self {
        self.mtbf = Some(mtbf);
        self.mttr = mttr;
        self
    }

    /// Enable per-attempt task failures with the given probability.
    pub fn with_task_failures(mut self, rate: f64, max_attempts: usize) -> Self {
        self.task_failure_rate = rate;
        self.max_attempts = max_attempts;
        self
    }

    /// Force the `epoch`-th solve (0-based) to fault.
    pub fn with_solver_fault(mut self, epoch: usize) -> Self {
        self.solver_fault_epoch = Some(epoch);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.processors == 0 {
            return Err(Error::NoProcessors);
        }
        if !self.horizon.is_finite() || self.horizon < 0.0 {
            return Err(Error::InvalidParameter {
                name: "fault_horizon",
                value: self.horizon,
            });
        }
        if let Some(mtbf) = self.mtbf {
            if !mtbf.is_finite() || mtbf <= 0.0 {
                return Err(Error::InvalidParameter {
                    name: "mtbf",
                    value: mtbf,
                });
            }
            if !self.mttr.is_finite() || self.mttr <= 0.0 {
                return Err(Error::InvalidParameter {
                    name: "mttr",
                    value: self.mttr,
                });
            }
        }
        if !self.task_failure_rate.is_finite() || !(0.0..=1.0).contains(&self.task_failure_rate) {
            return Err(Error::InvalidParameter {
                name: "task_failure_rate",
                value: self.task_failure_rate,
            });
        }
        Ok(())
    }
}

/// A fully pre-drawn fault scenario: outage intervals, per-(task, attempt)
/// failure fractions, and an optional forced solver fault.  Deterministic —
/// the engine replays it without randomness.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    processors: usize,
    horizon: f64,
    outages: Vec<Outage>,
    /// `failures[task][attempt]` — fraction of the committed segment after
    /// which the attempt dies, or `None` when the attempt succeeds.
    failures: Vec<Vec<Option<f64>>>,
    solver_fault_epoch: Option<usize>,
}

/// Exponential sample with the given mean: `-mean · ln(1 − u)`, `u ∈ [0, 1)`.
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0f64 - u).ln()
}

impl FaultPlan {
    /// An empty plan (no faults) for `processors` over `horizon` — the
    /// hand-authoring entry point for tests and scenarios; combine with
    /// [`FaultPlan::with_outage`] / [`FaultPlan::with_task_failure`] /
    /// [`FaultPlan::with_solver_fault`].
    pub fn empty(processors: usize, horizon: f64) -> Self {
        FaultPlan {
            processors,
            horizon,
            outages: Vec::new(),
            failures: Vec::new(),
            solver_fault_epoch: None,
        }
    }

    /// Add one explicit outage interval.
    pub fn with_outage(mut self, processor: usize, start: f64, end: f64) -> Self {
        assert!(processor < self.processors, "outage on unknown processor");
        assert!(
            start >= 0.0 && end > start,
            "outage interval must be forward"
        );
        self.outages.push(Outage {
            processor,
            start,
            end,
        });
        self.outages.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.processor.cmp(&b.processor))
        });
        self
    }

    /// Make attempt `attempt` (0-based) of `task` fail after `fraction` of
    /// its committed segment.
    pub fn with_task_failure(mut self, task: usize, attempt: usize, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "failure fraction must be strictly inside (0, 1)"
        );
        if self.failures.len() <= task {
            self.failures.resize(task + 1, Vec::new());
        }
        if self.failures[task].len() <= attempt {
            self.failures[task].resize(attempt + 1, None);
        }
        self.failures[task][attempt] = Some(fraction);
        self
    }

    /// Force the `epoch`-th solve (0-based) to fault.
    pub fn with_solver_fault(mut self, epoch: usize) -> Self {
        self.solver_fault_epoch = Some(epoch);
        self
    }

    /// Draw a plan from `config`.  Deterministic in the config (seed
    /// included); draws are consumed in a fixed order so changing one
    /// intensity never reshuffles the other fault classes.
    pub fn generate(config: &FaultConfig) -> Result<Self> {
        config.validate()?;
        let mut plan = FaultPlan::empty(config.processors, config.horizon);
        plan.solver_fault_epoch = config.solver_fault_epoch;

        // Outages: independent alternating up/down renewal process per
        // processor, each from its own sub-seeded RNG.  Processor 0 is
        // immortal so the machine never drops to zero capacity.
        if let Some(mtbf) = config.mtbf {
            for processor in 1..config.processors {
                let mut rng = StdRng::seed_from_u64(
                    config.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(processor as u64 + 1)),
                );
                let mut clock = 0.0f64;
                loop {
                    clock += exponential(&mut rng, mtbf);
                    if clock >= config.horizon {
                        break;
                    }
                    let down_for = exponential(&mut rng, config.mttr).max(1e-3);
                    plan.outages.push(Outage {
                        processor,
                        start: clock,
                        end: clock + down_for,
                    });
                    clock += down_for;
                }
            }
            plan.outages.sort_by(|a, b| {
                a.start
                    .total_cmp(&b.start)
                    .then(a.processor.cmp(&b.processor))
            });
        }

        // Per-(task, attempt) failure table.
        if config.task_failure_rate > 0.0 {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5bf0_3635));
            plan.failures = (0..config.tasks)
                .map(|_| {
                    (0..config.max_attempts.max(1))
                        .map(|_| {
                            if rng.gen_bool(config.task_failure_rate) {
                                // Keep the death strictly inside the segment.
                                Some(0.05 + 0.9 * rng.gen::<f64>())
                            } else {
                                None
                            }
                        })
                        .collect()
                })
                .collect();
        }
        Ok(plan)
    }

    /// Number of processors the plan targets.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Outage-generation horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// All outage intervals, sorted by start time.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// The failure fraction of attempt `attempt` (0-based) of `task`, or
    /// `None` when that attempt runs to completion.
    pub fn failure_fraction(&self, task: usize, attempt: usize) -> Option<f64> {
        self.failures
            .get(task)
            .and_then(|row| row.get(attempt).copied().flatten())
    }

    /// The solve index (0-based) forced to fault, if any.
    pub fn solver_fault_epoch(&self) -> Option<usize> {
        self.solver_fault_epoch
    }

    /// Whether the plan injects anything at all.
    pub fn is_quiet(&self) -> bool {
        self.outages.is_empty()
            && self.solver_fault_epoch.is_none()
            && self
                .failures
                .iter()
                .all(|row| row.iter().all(Option::is_none))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_config() -> FaultConfig {
        FaultConfig::new(8, 32, 50.0, 42)
            .with_crashes(20.0, 3.0)
            .with_task_failures(0.3, 4)
            .with_solver_fault(2)
    }

    #[test]
    fn generation_is_deterministic_in_the_config() {
        let a = FaultPlan::generate(&chaotic_config()).unwrap();
        let b = FaultPlan::generate(&chaotic_config()).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_quiet());
    }

    #[test]
    fn processor_zero_is_immortal_and_outages_are_sorted_and_forward() {
        let plan = FaultPlan::generate(&chaotic_config()).unwrap();
        assert!(!plan.outages().is_empty(), "MTBF 20 over 50×7 processors");
        let mut last_start = 0.0f64;
        for outage in plan.outages() {
            assert_ne!(outage.processor, 0, "processor 0 never crashes");
            assert!(outage.start >= last_start);
            assert!(outage.end > outage.start);
            assert!(outage.start < plan.horizon());
            last_start = outage.start;
        }
        // Per-processor outages never overlap each other.
        for p in 1..8 {
            let mut prior_end = 0.0f64;
            for outage in plan.outages().iter().filter(|o| o.processor == p) {
                assert!(outage.start >= prior_end - 1e-12);
                prior_end = outage.end;
            }
        }
    }

    #[test]
    fn failure_fractions_are_strictly_interior() {
        let plan = FaultPlan::generate(&chaotic_config()).unwrap();
        let mut injected = 0usize;
        for task in 0..32 {
            for attempt in 0..4 {
                if let Some(f) = plan.failure_fraction(task, attempt) {
                    assert!(f > 0.0 && f < 1.0);
                    injected += 1;
                }
            }
        }
        assert!(injected > 0, "rate 0.3 over 128 cells");
        // Attempts beyond the table always succeed.
        assert_eq!(plan.failure_fraction(0, 99), None);
        assert_eq!(plan.failure_fraction(999, 0), None);
    }

    #[test]
    fn hand_authored_plans_compose() {
        let plan = FaultPlan::empty(2, 10.0)
            .with_outage(1, 2.0, 5.0)
            .with_task_failure(0, 0, 0.5)
            .with_solver_fault(1);
        assert_eq!(plan.outages().len(), 1);
        assert_eq!(plan.failure_fraction(0, 0), Some(0.5));
        assert_eq!(plan.failure_fraction(0, 1), None);
        assert_eq!(plan.solver_fault_epoch(), Some(1));
        assert!(FaultPlan::empty(2, 10.0).is_quiet());
    }

    #[test]
    fn retry_backoff_is_capped_exponential() {
        let retry = RetryPolicy {
            max_attempts: 5,
            base_backoff: 0.5,
            multiplier: 2.0,
            max_backoff: 3.0,
        };
        retry.validate().unwrap();
        assert!((retry.backoff(1) - 0.5).abs() < 1e-12);
        assert!((retry.backoff(2) - 1.0).abs() < 1e-12);
        assert!((retry.backoff(3) - 2.0).abs() < 1e-12);
        assert!((retry.backoff(4) - 3.0).abs() < 1e-12, "capped");
        assert!(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn outage_overlap_uses_half_open_intervals() {
        let outage = Outage {
            processor: 1,
            start: 2.0,
            end: 5.0,
        };
        assert!(outage.overlaps(4.0, 6.0));
        assert!(outage.overlaps(0.0, 2.5));
        assert!(!outage.overlaps(0.0, 2.0), "segment ending at the crash");
        assert!(!outage.overlaps(5.0, 9.0), "segment starting at the repair");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(FaultPlan::generate(&FaultConfig::new(0, 4, 10.0, 1)).is_err());
        assert!(FaultPlan::generate(&FaultConfig::new(4, 4, f64::NAN, 1)).is_err());
        assert!(
            FaultPlan::generate(&FaultConfig::new(4, 4, 10.0, 1).with_crashes(-1.0, 1.0)).is_err()
        );
        assert!(
            FaultPlan::generate(&FaultConfig::new(4, 4, 10.0, 1).with_task_failures(1.5, 4))
                .is_err()
        );
    }
}
