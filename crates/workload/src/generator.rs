//! Deterministic random workload generation.

use crate::families::SpeedupFamily;
use malleable_core::{Instance, MalleableTask, Result};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How the sequential works of the generated tasks are distributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkMix {
    /// Works drawn uniformly from `[min, max]`.
    Uniform {
        /// Smallest sequential work.
        min: f64,
        /// Largest sequential work.
        max: f64,
    },
    /// A bimodal mix: a fraction `wide_fraction` of "wide" tasks with works in
    /// `[wide_min, wide_max]`, the rest with works in `[min, max]`.  This is
    /// the shape that stresses the knapsack branch of the paper (a few tasks
    /// whose canonical allotment exceeds the machine, plus background noise).
    Bimodal {
        /// Smallest background work.
        min: f64,
        /// Largest background work.
        max: f64,
        /// Smallest wide-task work.
        wide_min: f64,
        /// Largest wide-task work.
        wide_max: f64,
        /// Fraction of tasks drawn from the wide band.
        wide_fraction: f64,
    },
    /// Works following a truncated power law (many small tasks, few huge
    /// ones), the classical shape of batch workloads.
    PowerLaw {
        /// Smallest work.
        min: f64,
        /// Largest work (the truncation point).
        max: f64,
        /// The power-law exponent (larger skews smaller).
        exponent: f64,
    },
}

impl WorkMix {
    fn sample(&self, rng: &mut ChaCha8Rng) -> f64 {
        match *self {
            WorkMix::Uniform { min, max } => Uniform::new_inclusive(min, max).sample(rng),
            WorkMix::Bimodal {
                min,
                max,
                wide_min,
                wide_max,
                wide_fraction,
            } => {
                if rng.gen::<f64>() < wide_fraction {
                    Uniform::new_inclusive(wide_min, wide_max).sample(rng)
                } else {
                    Uniform::new_inclusive(min, max).sample(rng)
                }
            }
            WorkMix::PowerLaw { min, max, exponent } => {
                // Inverse-CDF sampling of a bounded Pareto distribution.
                let a = exponent.max(1.01);
                let u: f64 = rng.gen();
                let lo = min.powf(1.0 - a);
                let hi = max.powf(1.0 - a);
                (lo + u * (hi - lo)).powf(1.0 / (1.0 - a))
            }
        }
    }
}

/// Full description of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of tasks to generate.
    pub tasks: usize,
    /// Number of processors of the target machine.
    pub processors: usize,
    /// Distribution of sequential works.
    pub work_mix: WorkMix,
    /// The speed-up families to draw from (uniformly).  Parameters inside a
    /// family are themselves jittered per task.
    pub families: Vec<SpeedupFamily>,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A reasonable default configuration: a mixed batch of 50 tasks on 32
    /// processors with Amdahl/power-law/communication profiles.
    pub fn mixed(tasks: usize, processors: usize, seed: u64) -> Self {
        WorkloadConfig {
            tasks,
            processors,
            work_mix: WorkMix::Uniform { min: 0.5, max: 8.0 },
            families: vec![
                SpeedupFamily::Amdahl { alpha: 0.1 },
                SpeedupFamily::PowerLaw { sigma: 0.8 },
                SpeedupFamily::CommunicationOverhead { overhead: 0.02 },
                SpeedupFamily::Linear,
                SpeedupFamily::Sequential,
            ],
            seed,
        }
    }

    /// A configuration dominated by wide parallel tasks, stressing the
    /// knapsack/two-shelf branch.
    pub fn wide_tasks(tasks: usize, processors: usize, seed: u64) -> Self {
        WorkloadConfig {
            tasks,
            processors,
            work_mix: WorkMix::Bimodal {
                min: 0.2,
                max: 1.5,
                wide_min: processors as f64 * 0.5,
                wide_max: processors as f64 * 1.5,
                wide_fraction: 0.4,
            },
            families: vec![
                SpeedupFamily::Amdahl { alpha: 0.05 },
                SpeedupFamily::PowerLaw { sigma: 0.9 },
                SpeedupFamily::Linear,
            ],
            seed,
        }
    }

    /// A configuration of many small sequential-ish tasks, stressing the list
    /// branch (LPT regime).
    pub fn sequential_heavy(tasks: usize, processors: usize, seed: u64) -> Self {
        WorkloadConfig {
            tasks,
            processors,
            work_mix: WorkMix::PowerLaw {
                min: 0.1,
                max: 3.0,
                exponent: 2.2,
            },
            families: vec![
                SpeedupFamily::Sequential,
                SpeedupFamily::Amdahl { alpha: 0.5 },
                SpeedupFamily::PowerLaw { sigma: 0.4 },
            ],
            seed,
        }
    }
}

/// The deterministic workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
}

impl WorkloadGenerator {
    /// Wrap a configuration.
    pub fn new(config: WorkloadConfig) -> Self {
        WorkloadGenerator { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generate the instance described by the configuration.
    pub fn generate(&self) -> Result<Instance> {
        let tasks = self.stream().collect::<Result<Vec<_>>>()?;
        Instance::new(tasks, self.config.processors)
    }

    /// Stream the configured tasks lazily, in generation order.
    ///
    /// The stream draws from the same seeded generator state task by task,
    /// so collecting it reproduces [`WorkloadGenerator::generate`] bit for
    /// bit — `generate` is implemented on top of it.  Use the stream to feed
    /// million-task traces into the online engine without materialising the
    /// whole instance first.
    pub fn stream(&self) -> TaskStream {
        TaskStream {
            rng: ChaCha8Rng::seed_from_u64(self.config.seed),
            config: self.config.clone(),
            next_index: 0,
        }
    }

    /// Generate a batch of instances with consecutive seeds (for sweeps).
    pub fn generate_batch(&self, count: usize) -> Result<Vec<Instance>> {
        (0..count)
            .map(|i| {
                let mut cfg = self.config.clone();
                cfg.seed = cfg.seed.wrapping_add(i as u64);
                WorkloadGenerator::new(cfg).generate()
            })
            .collect()
    }
}

/// A lazy iterator over the tasks of a [`WorkloadConfig`], yielding exactly
/// the tasks [`WorkloadGenerator::generate`] would put in its instance, one
/// at a time (see [`WorkloadGenerator::stream`]).
#[derive(Debug, Clone)]
pub struct TaskStream {
    config: WorkloadConfig,
    rng: ChaCha8Rng,
    next_index: usize,
}

impl TaskStream {
    /// Total number of tasks this stream yields over its lifetime.
    pub fn total(&self) -> usize {
        self.config.tasks
    }
}

impl Iterator for TaskStream {
    type Item = Result<MalleableTask>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_index >= self.config.tasks {
            return None;
        }
        let index = self.next_index;
        self.next_index += 1;
        let work = self.config.work_mix.sample(&mut self.rng).max(1e-6);
        let family = self.config.families[self.rng.gen_range(0..self.config.families.len())];
        let family = jitter(family, &mut self.rng);
        Some(
            family
                .profile(work, self.config.processors)
                .map(|profile| MalleableTask::named(format!("{}-{index}", family.name()), profile)),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.tasks - self.next_index;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TaskStream {}

/// Jitter family parameters per task so instances are not degenerate.
fn jitter(family: SpeedupFamily, rng: &mut ChaCha8Rng) -> SpeedupFamily {
    match family {
        SpeedupFamily::Amdahl { alpha } => SpeedupFamily::Amdahl {
            alpha: (alpha * rng.gen_range(0.5..1.5)).clamp(0.0, 0.95),
        },
        SpeedupFamily::PowerLaw { sigma } => SpeedupFamily::PowerLaw {
            sigma: (sigma * rng.gen_range(0.8..1.2)).clamp(0.05, 1.0),
        },
        SpeedupFamily::CommunicationOverhead { overhead } => SpeedupFamily::CommunicationOverhead {
            overhead: (overhead * rng.gen_range(0.5..2.0)).max(0.0),
        },
        SpeedupFamily::Step { sigma } => SpeedupFamily::Step {
            sigma: (sigma * rng.gen_range(0.8..1.2)).clamp(0.05, 1.0),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::SpeedupProfile;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = WorkloadConfig::mixed(20, 16, 42);
        let a = WorkloadGenerator::new(cfg.clone()).generate().unwrap();
        let b = WorkloadGenerator::new(cfg).generate().unwrap();
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(WorkloadConfig::mixed(20, 16, 43))
            .generate()
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_instances_have_requested_shape() {
        for cfg in [
            WorkloadConfig::mixed(30, 8, 1),
            WorkloadConfig::wide_tasks(12, 16, 2),
            WorkloadConfig::sequential_heavy(40, 4, 3),
        ] {
            let inst = WorkloadGenerator::new(cfg.clone()).generate().unwrap();
            assert_eq!(inst.task_count(), cfg.tasks);
            assert_eq!(inst.processors(), cfg.processors);
            for (_, task) in inst.iter() {
                assert!(SpeedupProfile::new(task.profile.times().to_vec()).is_ok());
            }
        }
    }

    #[test]
    fn batch_generation_varies_seeds() {
        let gen = WorkloadGenerator::new(WorkloadConfig::mixed(10, 8, 7));
        let batch = gen.generate_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_ne!(batch[0], batch[1]);
        assert_ne!(batch[1], batch[2]);
    }

    #[test]
    fn power_law_mix_respects_bounds() {
        let mix = WorkMix::PowerLaw {
            min: 0.5,
            max: 10.0,
            exponent: 2.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..500 {
            let w = mix.sample(&mut rng);
            assert!((0.5..=10.0 + 1e-9).contains(&w), "sample {w} out of bounds");
        }
    }

    #[test]
    fn wide_tasks_config_produces_wide_canonical_allotments() {
        let inst = WorkloadGenerator::new(WorkloadConfig::wide_tasks(20, 16, 11))
            .generate()
            .unwrap();
        // At the area-bound deadline some tasks must need several processors.
        let omega = malleable_core::bounds::upper_bound(&inst);
        let allotment = inst.canonical_allotment(omega).unwrap();
        assert!(allotment.iter().any(|&q| q >= 1));
    }
}
