//! Heterogeneous-cluster workload support: machine-class specifications and
//! scenario generation for classed clusters.
//!
//! The `hetero` crate models clusters whose processors come in *named
//! classes* (e.g. an old partition at speed 1.0 next to a new partition at
//! speed 2.0).  The specification syntax lives here, next to the other
//! workload inputs, so the CLI, the benches and the `hetero` crate parse one
//! format:
//!
//! ```text
//! old=8x1.0,new=4x2.0
//! ```
//!
//! — comma-separated `name=COUNTxSPEED` entries with unique names, positive
//! counts and positive finite speed factors.
//!
//! ```rust
//! use workload::{parse_class_specs, ClassSpec};
//!
//! let classes = parse_class_specs("old=8x1.0,new=4x2.0").unwrap();
//! assert_eq!(classes.len(), 2);
//! assert_eq!(classes[0], ClassSpec::new("old", 8, 1.0));
//! assert_eq!(classes[1].count, 4);
//! ```

use crate::arrivals::{ArrivalPattern, ArrivalTrace, TraceConfig};
use crate::generator::WorkloadConfig;

/// One machine class of a heterogeneous cluster: a name, how many
/// processors it contributes, and a multiplicative speed factor relative to
/// the reference (speed 1.0) machines the base speed-up profiles describe.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Class name (unique within a cluster spec).
    pub name: String,
    /// Number of processors in the class.
    pub count: usize,
    /// Speed factor: a task's execution time in this class is the base
    /// profile time divided by this factor.
    pub speed: f64,
}

impl ClassSpec {
    /// Build a class spec.
    pub fn new(name: &str, count: usize, speed: f64) -> Self {
        ClassSpec {
            name: name.to_string(),
            count,
            speed,
        }
    }

    /// Render the spec in the `name=COUNTxSPEED` input syntax.
    pub fn render(&self) -> String {
        format!("{}={}x{}", self.name, self.count, self.speed)
    }
}

/// Parse a comma-separated cluster specification (`old=8x1.0,new=4x2.0`)
/// into class specs.  Returns a human-readable message on malformed input:
/// empty specs, missing `=`/`x` separators, non-numeric counts or speeds,
/// zero counts, non-positive or non-finite speeds, and duplicate names are
/// all rejected.
pub fn parse_class_specs(spec: &str) -> Result<Vec<ClassSpec>, String> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Err("cluster spec is empty".to_string());
    }
    let mut classes: Vec<ClassSpec> = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let (name, shape) = entry
            .split_once('=')
            .ok_or_else(|| format!("`{entry}` is not of the form name=COUNTxSPEED"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("`{entry}` has an empty class name"));
        }
        if classes.iter().any(|c| c.name == name) {
            return Err(format!("class `{name}` appears twice"));
        }
        let (count, speed) = shape
            .split_once(['x', 'X'])
            .ok_or_else(|| format!("`{entry}` is not of the form name=COUNTxSPEED"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("`{entry}` has a non-integer processor count"))?;
        if count == 0 {
            return Err(format!("class `{name}` has zero processors"));
        }
        let speed: f64 = speed
            .trim()
            .parse()
            .map_err(|_| format!("`{entry}` has a non-numeric speed factor"))?;
        if !(speed.is_finite() && speed > 0.0) {
            return Err(format!("class `{name}` has invalid speed {speed}"));
        }
        classes.push(ClassSpec::new(name, count, speed));
    }
    Ok(classes)
}

/// Total processor count of a class list.
pub fn total_class_processors(classes: &[ClassSpec]) -> usize {
    classes.iter().map(|c| c.count).sum()
}

/// Generate a deterministic bursty arrival trace sized to a classed
/// cluster: the machine size is the total processor count of `classes`, the
/// task population is the standard mixed workload.  The same seed always
/// produces the same trace, so classed-vs-baseline comparisons run on
/// identical inputs.
pub fn classed_trace(
    classes: &[ClassSpec],
    tasks: usize,
    seed: u64,
) -> malleable_core::Result<ArrivalTrace> {
    let processors = total_class_processors(classes);
    let config = TraceConfig {
        workload: WorkloadConfig::mixed(tasks, processors, seed),
        pattern: ArrivalPattern::Bursty {
            burst_size: (tasks / 4).clamp(2, 16),
            burst_gap: 2.0,
        },
    };
    ArrivalTrace::generate(&config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_two_class_spec() {
        let classes = parse_class_specs("old=8x1.0,new=4x2.0").unwrap();
        assert_eq!(
            classes,
            vec![ClassSpec::new("old", 8, 1.0), ClassSpec::new("new", 4, 2.0)]
        );
        assert_eq!(total_class_processors(&classes), 12);
        assert_eq!(classes[1].render(), "new=4x2");
    }

    #[test]
    fn tolerates_whitespace_and_uppercase_x() {
        let classes = parse_class_specs(" fast = 2X2.5 , slow = 6 x 0.5 ").unwrap();
        assert_eq!(classes[0].name, "fast");
        assert_eq!(classes[0].count, 2);
        assert_eq!(classes[0].speed, 2.5);
        assert_eq!(classes[1].name, "slow");
    }

    #[test]
    fn rejects_malformed_specs_with_specific_messages() {
        for (spec, needle) in [
            ("", "empty"),
            ("old8x1.0", "name=COUNTxSPEED"),
            ("old=8", "name=COUNTxSPEED"),
            ("=8x1.0", "empty class name"),
            ("old=ax1.0", "non-integer"),
            ("old=0x1.0", "zero processors"),
            ("old=8xfast", "non-numeric"),
            ("old=8x0.0", "invalid speed"),
            ("old=8x-1.0", "invalid speed"),
            ("old=8x1.0,old=4x2.0", "twice"),
        ] {
            let err = parse_class_specs(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn classed_trace_is_deterministic_and_sized_to_the_cluster() {
        let classes = parse_class_specs("old=8x1.0,new=4x2.0").unwrap();
        let a = classed_trace(&classes, 20, 7).unwrap();
        let b = classed_trace(&classes, 20, 7).unwrap();
        assert_eq!(a.processors(), 12);
        assert_eq!(a.len(), 20);
        assert_eq!(a.arrivals().len(), b.arrivals().len());
        for (x, y) in a.arrivals().iter().zip(b.arrivals()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.task.profile, y.task.profile);
        }
    }
}
