//! JSON serialisation of instances.
//!
//! Instances are exchanged as a small, self-describing JSON document so that
//! experiments can be re-run on exactly the same input and examples can ship
//! reproducible scenarios.

use malleable_core::{Instance, MalleableTask, Result, SpeedupProfile};
use serde_json::{json, Value};

/// Serialise an instance to a pretty-printed JSON string.
pub fn instance_to_json(instance: &Instance) -> String {
    let tasks: Vec<Value> = instance
        .iter()
        .map(|(_, task)| {
            json!({
                "name": task.name.clone(),
                "times": task.profile.times().to_vec(),
            })
        })
        .collect();
    let doc = json!({
        "processors": instance.processors(),
        "tasks": tasks,
    });
    serde_json::to_string_pretty(&doc).expect("instance serialisation cannot fail")
}

/// Compare two instances up to a relative tolerance on the execution times.
///
/// JSON is a decimal text format: the installed `serde_json` printer is not
/// guaranteed to emit the shortest round-tripping representation, so
/// re-parsed instances can differ from the originals in the last unit of
/// precision.  Use this helper instead of `==` when comparing across a
/// serialisation boundary.
pub fn instances_approx_equal(a: &Instance, b: &Instance, tolerance: f64) -> bool {
    if a.processors() != b.processors() || a.task_count() != b.task_count() {
        return false;
    }
    a.tasks().iter().zip(b.tasks()).all(|(ta, tb)| {
        ta.name == tb.name
            && ta.profile.times().len() == tb.profile.times().len()
            && ta
                .profile
                .times()
                .iter()
                .zip(tb.profile.times())
                .all(|(x, y)| (x - y).abs() <= tolerance * x.abs().max(1.0))
    })
}

/// The error every malformed document maps to: the core error type has no
/// free-form variant, so parse failures surface as an invalid `json`
/// parameter.
fn invalid_json() -> malleable_core::Error {
    malleable_core::Error::InvalidParameter {
        name: "json",
        value: f64::NAN,
    }
}

/// Parse one task object (`{"name": ..., "times": [...]}`) of a document.
pub(crate) fn task_from_value(value: &Value) -> Result<MalleableTask> {
    let times: Vec<f64> = value
        .get("times")
        .and_then(Value::as_array)
        .ok_or_else(invalid_json)?
        .iter()
        .map(|t| t.as_f64().ok_or_else(invalid_json))
        .collect::<Result<_>>()?;
    let profile = SpeedupProfile::new(times)?;
    Ok(match value.get("name").and_then(Value::as_str) {
        Some(name) => MalleableTask::named(name, profile),
        None => MalleableTask::new(profile),
    })
}

/// Parse an instance from its JSON representation, re-validating every
/// profile (documents with non-monotone profiles are rejected).
pub fn instance_from_json(json: &str) -> Result<Instance> {
    let doc = serde_json::from_str(json).map_err(|_| invalid_json())?;
    let processors = doc
        .get("processors")
        .and_then(Value::as_u64)
        .ok_or_else(invalid_json)? as usize;
    let tasks = doc
        .get("tasks")
        .and_then(Value::as_array)
        .ok_or_else(invalid_json)?
        .iter()
        .map(task_from_value)
        .collect::<Result<Vec<_>>>()?;
    Instance::new(tasks, processors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};

    #[test]
    fn round_trip_preserves_instances() {
        let inst = WorkloadGenerator::new(WorkloadConfig::mixed(15, 8, 5))
            .generate()
            .unwrap();
        let json = instance_to_json(&inst);
        let parsed = instance_from_json(&json).unwrap();
        assert!(instances_approx_equal(&inst, &parsed, 1e-12));
    }

    #[test]
    fn approx_equality_detects_real_differences() {
        let a = instance_from_json(
            r#"{ "processors": 2, "tasks": [{ "name": null, "times": [1.0, 0.6] }] }"#,
        )
        .unwrap();
        let b = instance_from_json(
            r#"{ "processors": 2, "tasks": [{ "name": null, "times": [1.0, 0.7] }] }"#,
        )
        .unwrap();
        assert!(instances_approx_equal(&a, &a, 1e-12));
        assert!(!instances_approx_equal(&a, &b, 1e-12));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(instance_from_json("{ not json").is_err());
    }

    #[test]
    fn non_monotone_documents_are_rejected() {
        let json = r#"{
            "processors": 2,
            "tasks": [{ "name": null, "times": [1.0, 2.0] }]
        }"#;
        assert!(instance_from_json(json).is_err());
    }

    #[test]
    fn hand_written_document_parses() {
        let json = r#"{
            "processors": 4,
            "tasks": [
                { "name": "solver", "times": [4.0, 2.2, 1.6, 1.3] },
                { "name": "io", "times": [0.5] }
            ]
        }"#;
        let inst = instance_from_json(json).unwrap();
        assert_eq!(inst.task_count(), 2);
        assert_eq!(inst.processors(), 4);
        assert_eq!(inst.task(0).name.as_deref(), Some("solver"));
    }
}
