//! # workload
//!
//! Synthetic workload generation for the malleable-task scheduling
//! experiments.
//!
//! The paper motivates malleable tasks with parallel applications whose
//! speed-up saturates because of communication and parallelisation overheads
//! (its running example is an ocean-circulation simulation with adaptive
//! meshing).  Those application traces are not publicly available, so the
//! experiment harness uses synthetic *monotone* speed-up families that cover
//! the behaviours discussed in §2.1 of the paper and in the standard parallel
//! workload literature:
//!
//! * [`SpeedupFamily::Amdahl`] — a sequential fraction bounds the speed-up;
//! * [`SpeedupFamily::PowerLaw`] — `t(p) = w / p^σ` (Downey-style sub-linear
//!   speed-up, `σ ∈ (0, 1]`);
//! * [`SpeedupFamily::CommunicationOverhead`] — linear speed-up plus a
//!   per-processor communication penalty `t(p) = w/p + c·(p − 1)`, repaired to
//!   stay monotone beyond its optimal processor count;
//! * [`SpeedupFamily::Step`] — the task only exploits powers of two
//!   (a common shape for FFT-like kernels);
//! * [`SpeedupFamily::Linear`] — perfect speed-up (the easiest case, where
//!   the area bound is tight);
//! * [`SpeedupFamily::Sequential`] — no speed-up at all (the hardest case for
//!   wide machines, where LPT behaviour dominates).
//!
//! Every generated profile is validated (or repaired) to satisfy the paper's
//! two monotonicity conditions, so the guarantees of `malleable-core` apply.
//! Generation is fully deterministic given a [`WorkloadConfig`] seed.
//!
//! For the online engine (crate `online`), the [`arrivals`] module extends
//! the same populations with *arrival times* — Poisson and bursty
//! [`ArrivalPattern`]s — producing [`ArrivalTrace`]s with their own JSON
//! representation.  The [`faults`] module adds seeded, deterministic fault
//! scenarios ([`FaultPlan`]: processor outages, per-attempt task failures,
//! forced solver faults) that the engine replays without randomness.

#![warn(missing_docs)]

pub mod arrivals;
pub mod families;
pub mod faults;
pub mod generator;
pub mod hetero;
pub mod io;
pub mod residual;
pub mod stats;

pub use arrivals::{
    trace_from_json, trace_to_json, Arrival, ArrivalPattern, ArrivalStream, ArrivalTrace,
    DeparturePolicy, TraceConfig,
};
pub use families::SpeedupFamily;
pub use faults::{FaultConfig, FaultPlan, Outage, RetryPolicy};
pub use generator::{TaskStream, WorkMix, WorkloadConfig, WorkloadGenerator};
pub use hetero::{classed_trace, parse_class_specs, total_class_processors, ClassSpec};
pub use io::{instance_from_json, instance_to_json, instances_approx_equal};
pub use residual::{executed_fraction, residual_profile, residual_task};
pub use stats::{describe, InstanceStats};
