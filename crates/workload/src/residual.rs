//! The residual-task model of mid-execution re-allotment.
//!
//! The malleable model lets a task's processor allotment change *while it
//! runs*.  Under the monotone speed-up model the clean way to account for
//! that is by **fraction of work executed**: a task running at allotment `p`
//! progresses at rate `1 / t(p)` of its whole work per unit of time, so a
//! segment of length `e` at allotment `p` completes the fraction `e / t(p)`
//! regardless of how much was already done.  Work executed at the old
//! allotment is conserved; the unexecuted tail behaves exactly like a fresh
//! task whose profile is the original scaled by the remaining fraction
//! ([`malleable_core::SpeedupProfile::scaled`]), because
//!
//! ```text
//! residual time at allotment p  =  remaining · t(p).
//! ```
//!
//! The online engine uses these helpers to hand preempted running tasks back
//! to the offline solver as *residual tasks*: zero-arrival pending tasks with
//! scaled profiles.  Any sequence of re-allotments then conserves total work
//! by construction — the executed fractions of the segments sum to one
//! (pinned by the workspace proptests).

use malleable_core::eps::{approx_eq, approx_le};
use malleable_core::{Error, MalleableTask, Result, SpeedupProfile};

/// Fraction of the *whole task* completed by running `elapsed` time units at
/// `allotment` processors.  Independent of how much of the task was already
/// done — progress accrues at rate `1 / t(allotment)`.
pub fn executed_fraction(profile: &SpeedupProfile, allotment: usize, elapsed: f64) -> f64 {
    elapsed / profile.time(allotment)
}

/// The profile of the unexecuted tail of a task with `remaining ∈ (0, 1]` of
/// its work left: the original profile scaled by `remaining`.
///
/// Errors when `remaining` is not a usable fraction (non-finite, ≤ 0 or
/// above 1 beyond rounding slack).
pub fn residual_profile(profile: &SpeedupProfile, remaining: f64) -> Result<SpeedupProfile> {
    check_fraction(remaining)?;
    if approx_eq(remaining, 1.0) {
        return Ok(profile.clone());
    }
    profile.scaled(remaining)
}

/// The residual task of `task` with `remaining ∈ (0, 1]` of its work left:
/// same name, profile scaled by `remaining` (see [`residual_profile`]).
pub fn residual_task(task: &MalleableTask, remaining: f64) -> Result<MalleableTask> {
    Ok(MalleableTask {
        name: task.name.clone(),
        profile: residual_profile(&task.profile, remaining)?,
    })
}

fn check_fraction(remaining: f64) -> Result<()> {
    if !(remaining.is_finite() && remaining > 0.0 && approx_le(remaining, 1.0)) {
        return Err(Error::InvalidParameter {
            name: "remaining",
            value: remaining,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn profile() -> SpeedupProfile {
        SpeedupProfile::new(vec![8.0, 4.5, 3.5]).unwrap()
    }

    #[test]
    fn executed_fraction_is_rate_times_elapsed() {
        let p = profile();
        assert!((executed_fraction(&p, 1, 2.0) - 0.25).abs() < 1e-12);
        assert!((executed_fraction(&p, 2, 4.5) - 1.0).abs() < 1e-12);
        // Allotments beyond the profile progress at the flat tail rate.
        assert!((executed_fraction(&p, 9, 3.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residual_profile_scales_times() {
        let p = profile();
        let r = residual_profile(&p, 0.5).unwrap();
        assert_eq!(r.time(1), 4.0);
        assert_eq!(r.time(2), 2.25);
        // A full residual is the task itself, bit for bit.
        assert_eq!(residual_profile(&p, 1.0).unwrap(), p);
    }

    #[test]
    fn invalid_fractions_are_rejected() {
        let p = profile();
        let task = MalleableTask::new(p.clone());
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(residual_profile(&p, bad).is_err(), "fraction {bad}");
            assert!(residual_task(&task, bad).is_err(), "fraction {bad}");
        }
    }

    #[test]
    fn residual_task_keeps_the_name() {
        let task = MalleableTask::named("fft", profile());
        let r = residual_task(&task, 0.25).unwrap();
        assert_eq!(r.name.as_deref(), Some("fft"));
        assert!((r.time(1) - 2.0).abs() < 1e-12);
    }

    proptest! {
        /// Work conservation: running a task as an arbitrary sequence of
        /// segments, each at an arbitrary allotment, executes exactly its
        /// whole work — the executed fractions sum to one and the residual
        /// chain terminates with a zero tail (within 1e-6).
        #[test]
        fn reallotment_sequences_conserve_work(
            times in prop::collection::vec(0.05f64..20.0, 1..12),
            splits in prop::collection::vec((0.05f64..0.95, 1usize..12), 0..8),
        ) {
            let p = SpeedupProfile::repair(times);
            let mut remaining = 1.0f64;
            let mut executed = 0.0f64;
            for (cut, allotment) in splits {
                // Run the residual at `allotment` for `cut` of its residual
                // time, i.e. executing `cut · remaining` of the whole task.
                let residual = residual_profile(&p, remaining).unwrap();
                let elapsed = cut * residual.time(allotment);
                // Progress measured against the *original* profile: the
                // residual runs `elapsed / t(allotment)` of the whole task.
                let step = executed_fraction(&p, allotment, elapsed);
                prop_assert!((step - cut * remaining).abs() <= 1e-9);
                executed += step;
                remaining -= step;
                prop_assert!(remaining > 0.0);
            }
            // Finish the tail in one final segment at the widest allotment.
            let residual = residual_profile(&p, remaining).unwrap();
            let final_allotment = p.max_processors();
            executed += executed_fraction(&p, final_allotment, residual.time(final_allotment));
            prop_assert!((executed - 1.0).abs() <= 1e-6, "executed {executed}");
        }
    }
}
