//! Descriptive statistics of instances, used by the experiment reports.

use malleable_core::{bounds, Instance};

/// Summary statistics of an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of processors.
    pub processors: usize,
    /// Total sequential work.
    pub total_work: f64,
    /// Area lower bound (`total work / m`).
    pub area_bound: f64,
    /// Critical-task lower bound.
    pub critical_bound: f64,
    /// Combined certified lower bound.
    pub lower_bound: f64,
    /// Trivial feasible upper bound.
    pub upper_bound: f64,
    /// Mean sequential work per task.
    pub mean_work: f64,
    /// Maximum sequential work over tasks.
    pub max_work: f64,
    /// Average parallelism: sequential work divided by the minimal achievable
    /// execution time, averaged over tasks (1.0 for fully sequential tasks).
    pub mean_parallelism: f64,
}

/// Compute the summary statistics of an instance.
pub fn describe(instance: &Instance) -> InstanceStats {
    let n = instance.task_count();
    let works: Vec<f64> = (0..n).map(|t| instance.time(t, 1)).collect();
    let total_work: f64 = works.iter().sum();
    let max_work = works.iter().cloned().fold(0.0, f64::max);
    let mean_parallelism = (0..n)
        .map(|t| {
            let seq = instance.time(t, 1);
            let best = instance.task(t).profile.min_time();
            seq / best
        })
        .sum::<f64>()
        / n as f64;
    InstanceStats {
        tasks: n,
        processors: instance.processors(),
        total_work,
        area_bound: bounds::area_bound(instance),
        critical_bound: bounds::critical_task_bound(instance),
        lower_bound: bounds::lower_bound(instance),
        upper_bound: bounds::upper_bound(instance),
        mean_work: total_work / n as f64,
        max_work,
        mean_parallelism,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};
    use malleable_core::SpeedupProfile;

    #[test]
    fn stats_match_hand_computation() {
        let inst = Instance::from_profiles(
            vec![
                SpeedupProfile::linear(4.0, 4).unwrap(),
                SpeedupProfile::sequential(2.0).unwrap(),
            ],
            4,
        )
        .unwrap();
        let stats = describe(&inst);
        assert_eq!(stats.tasks, 2);
        assert_eq!(stats.processors, 4);
        assert!((stats.total_work - 6.0).abs() < 1e-12);
        assert!((stats.area_bound - 1.5).abs() < 1e-12);
        assert!((stats.mean_work - 3.0).abs() < 1e-12);
        assert!((stats.max_work - 4.0).abs() < 1e-12);
        // Parallelism: task 0 achieves 4, task 1 achieves 1 → mean 2.5.
        assert!((stats.mean_parallelism - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_ordered() {
        let inst = WorkloadGenerator::new(WorkloadConfig::mixed(25, 8, 17))
            .generate()
            .unwrap();
        let stats = describe(&inst);
        assert!(stats.lower_bound >= stats.area_bound - 1e-9);
        assert!(stats.lower_bound >= stats.critical_bound - 1e-9);
        assert!(stats.upper_bound >= stats.lower_bound - 1e-9);
    }
}
