//! Scheduling a batch of moldable HPC jobs on a cluster partition.
//!
//! A batch scheduler that supports *moldable* jobs (the user gives a feasible
//! range of processor counts and the measured run time for each) can use the
//! malleable-task algorithms directly: every queued job is a monotone
//! malleable task, the partition is the machine, and minimising the makespan
//! of the batch maximises partition throughput.
//!
//! ```text
//! cargo run -p mrt-examples --release --example cluster_batch
//! ```

use baselines::{gang_schedule, ludwig, sequential_lpt, RigidScheduler, TwoPhaseScheduler};
use malleable_core::prelude::*;
use mrt_examples::comparison_row;
use workload::{SpeedupFamily, WorkMix, WorkloadConfig, WorkloadGenerator};

fn main() {
    // A 128-core partition and a queue of 80 jobs with a realistic mix:
    // many small analysis scripts, some medium solvers, a few hero runs.
    let config = WorkloadConfig {
        tasks: 80,
        processors: 128,
        work_mix: WorkMix::PowerLaw {
            min: 0.5,
            max: 400.0,
            exponent: 1.8,
        },
        families: vec![
            SpeedupFamily::Amdahl { alpha: 0.08 },
            SpeedupFamily::PowerLaw { sigma: 0.85 },
            SpeedupFamily::CommunicationOverhead { overhead: 0.01 },
            SpeedupFamily::Sequential,
        ],
        seed: 2024,
    };
    let instance = WorkloadGenerator::new(config).generate().expect("workload");

    let stats = workload::describe(&instance);
    println!(
        "batch of {} jobs on {} cores: total work {:.1}, mean parallelism {:.1}x",
        stats.tasks, stats.processors, stats.total_work, stats.mean_parallelism
    );
    println!(
        "lower bound on the batch makespan: {:.2}\n",
        stats.lower_bound
    );

    let mrt = MrtScheduler::default().schedule(&instance).expect("mrt");
    let ludwig_schedule = ludwig(&instance).expect("ludwig");
    let twy_list = TwoPhaseScheduler {
        rigid: RigidScheduler::List,
    }
    .schedule(&instance)
    .expect("twy+list");
    let gang = gang_schedule(&instance);
    let lpt = sequential_lpt(&instance);

    println!(
        "{}",
        comparison_row("MRT (sqrt(3))", &instance, &mrt.schedule)
    );
    println!(
        "{}",
        comparison_row("Ludwig (TWY+FFDH)", &instance, &ludwig_schedule)
    );
    println!("{}", comparison_row("TWY + list", &instance, &twy_list));
    println!("{}", comparison_row("gang scheduling", &instance, &gang));
    println!("{}", comparison_row("sequential LPT", &instance, &lpt));

    // Throughput view: how much earlier does the batch finish under MRT?
    let saved_vs_lpt = lpt.makespan() - mrt.schedule.makespan();
    let saved_vs_gang = gang.makespan() - mrt.schedule.makespan();
    println!(
        "\nMRT finishes the batch {:.1} time units earlier than sequential LPT \
         and {:.1} earlier than gang scheduling.",
        saved_vs_lpt, saved_vs_gang
    );
    assert!(mrt.schedule.validate(&instance).is_ok());
}
