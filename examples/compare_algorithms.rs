//! Head-to-head comparison of every scheduler in the workspace over random
//! workload families — a compact, console version of the experiments in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p mrt-examples --release --example compare_algorithms
//! ```

use baselines::{gang_schedule, ludwig, sequential_lpt};
use malleable_core::bounds;
use malleable_core::prelude::*;
use workload::{WorkloadConfig, WorkloadGenerator};

struct Accumulator {
    name: &'static str,
    ratios: Vec<f64>,
}

impl Accumulator {
    fn new(name: &'static str) -> Self {
        Accumulator {
            name,
            ratios: Vec::new(),
        }
    }

    fn record(&mut self, makespan: f64, lower_bound: f64) {
        self.ratios.push(makespan / lower_bound);
    }

    fn report(&self) -> String {
        let n = self.ratios.len() as f64;
        let mean = self.ratios.iter().sum::<f64>() / n;
        let max = self.ratios.iter().cloned().fold(0.0, f64::max);
        format!(
            "{:<20} mean ratio = {:.3}   worst ratio = {:.3}",
            self.name, mean, max
        )
    }
}

type ConfigBuilder = fn(usize, usize, u64) -> WorkloadConfig;

fn main() {
    let families: [(&str, ConfigBuilder); 3] = [
        ("mixed", WorkloadConfig::mixed),
        ("wide-tasks", WorkloadConfig::wide_tasks),
        ("sequential-heavy", WorkloadConfig::sequential_heavy),
    ];
    let seeds = 0..20u64;

    for (family_name, make_config) in families {
        println!("== workload family: {family_name} (20 instances, n = 40, m = 32) ==");
        let mut mrt_acc = Accumulator::new("MRT (sqrt(3))");
        let mut ludwig_acc = Accumulator::new("Ludwig two-phase");
        let mut gang_acc = Accumulator::new("gang scheduling");
        let mut lpt_acc = Accumulator::new("sequential LPT");

        for seed in seeds.clone() {
            let instance = WorkloadGenerator::new(make_config(40, 32, seed))
                .generate()
                .expect("workload");
            let lb = bounds::lower_bound(&instance);

            let mrt = MrtScheduler::default().schedule(&instance).expect("mrt");
            assert!(mrt.schedule.validate(&instance).is_ok());
            mrt_acc.record(mrt.schedule.makespan(), lb);

            let ludwig_schedule = ludwig(&instance).expect("ludwig");
            ludwig_acc.record(ludwig_schedule.makespan(), lb);

            gang_acc.record(gang_schedule(&instance).makespan(), lb);
            lpt_acc.record(sequential_lpt(&instance).makespan(), lb);
        }

        println!("  {}", mrt_acc.report());
        println!("  {}", ludwig_acc.report());
        println!("  {}", gang_acc.report());
        println!("  {}", lpt_acc.report());
        println!();
    }

    println!(
        "Expected ordering (paper §1): the MRT ratios stay below sqrt(3) ≈ 1.732 and\n\
         below the two-phase baseline; gang scheduling and sequential LPT degrade on\n\
         the families that do not match their assumptions."
    );
}
