//! Reproduce Figure 8 of the paper: the minimal machine size `m_λ` for which
//! the canonical list algorithm's two-level property (Property 3) is asserted,
//! as a function of the shelf parameter λ.
//!
//! The figure in the paper plots λ from 0.75 to 0.95 on the x axis, the
//! minimal number of processors (5 to 20) on the y axis, and highlights the
//! point λ = √3/2 where the curve crosses m = 8.  This example prints the
//! same series as text (and the companion benchmark `figure8` records it).
//!
//! ```text
//! cargo run -p mrt-examples --release --example figure8
//! ```

use malleable_core::canonical::{h_hat, k_star, m_lambda};

fn main() {
    println!("Figure 8 — minimal number of processors m_lambda as a function of lambda");
    println!(
        "{:>8}  {:>6}  {:>6}  {:>9}",
        "lambda", "k*", "h_hat", "m_lambda"
    );

    let mut lambda = 0.755;
    while lambda <= 1.0 + 1e-9 {
        let m = m_lambda(lambda).expect("lambda is above 3/4");
        println!(
            "{:>8.3}  {:>6}  {:>6}  {:>9}",
            lambda,
            k_star(lambda),
            h_hat(lambda),
            m
        );
        lambda += 0.01;
    }

    let sqrt3_over_2 = 3f64.sqrt() / 2.0;
    println!(
        "\nAt lambda = sqrt(3)/2 = {:.4} (the value used by Theorem 2): m_lambda = {}",
        sqrt3_over_2,
        m_lambda(sqrt3_over_2).unwrap()
    );
    println!(
        "The curve decreases with lambda and diverges as lambda approaches 3/4, \
         matching the shape of the paper's figure."
    );

    // Simple textual plot, one row per lambda step, one '#' per 1 processor.
    println!("\nASCII rendering (x: lambda, bar length: m_lambda):");
    let mut lambda = 0.76;
    while lambda <= 1.0 + 1e-9 {
        let m = m_lambda(lambda).unwrap();
        println!("{lambda:>5.2} | {}", "#".repeat(m.min(60)));
        lambda += 0.02;
    }
}
