//! The paper's motivating application: load balancing an ocean-circulation
//! simulation with adaptive meshing (Blayo, Debreu, Mounié, Trystram 1999).
//!
//! The Atlantic is decomposed into rectangular regions; each region is an
//! independent malleable task whose work is proportional to its mesh density
//! (refined regions near strong currents carry much more work) and whose
//! speed-up saturates with a per-processor halo-exchange overhead.  At every
//! remeshing step the regions must be (re)scheduled on the machine so that the
//! whole step finishes as early as possible — exactly the independent
//! malleable makespan problem of the paper.
//!
//! ```text
//! cargo run -p mrt-examples --release --example ocean_simulation
//! ```

use baselines::{gang_schedule, ludwig, sequential_lpt};
use malleable_core::prelude::*;
use mrt_examples::comparison_row;
use simulator::simulate;

/// One rectangular region of the ocean grid.
struct Region {
    name: &'static str,
    /// Number of mesh cells (work is proportional to it).
    cells: f64,
    /// Refinement level: refined regions have a higher per-cell cost and a
    /// larger halo overhead.
    refinement: u32,
}

fn region_profile(region: &Region, processors: usize) -> SpeedupProfile {
    // Work: cells × cost per cell (refined levels integrate with smaller time
    // steps, hence cost grows with refinement).
    let work = region.cells * 1e-4 * (1.0 + 0.6 * region.refinement as f64);
    // Halo-exchange overhead per extra processor, relative to the work: deeper
    // refinement means a larger surface-to-volume ratio.
    let overhead = 0.004 * (1.0 + region.refinement as f64);
    SpeedupProfile::from_fn(processors, |p| {
        work / p as f64 + work * overhead * (p as f64 - 1.0)
    })
    .expect("ocean region profiles are positive")
}

fn main() {
    let processors = 64;
    let regions = [
        Region {
            name: "gulf-stream",
            cells: 90_000.0,
            refinement: 3,
        },
        Region {
            name: "labrador",
            cells: 42_000.0,
            refinement: 2,
        },
        Region {
            name: "azores",
            cells: 35_000.0,
            refinement: 2,
        },
        Region {
            name: "equatorial",
            cells: 64_000.0,
            refinement: 1,
        },
        Region {
            name: "benguela",
            cells: 28_000.0,
            refinement: 2,
        },
        Region {
            name: "north-atlantic",
            cells: 120_000.0,
            refinement: 0,
        },
        Region {
            name: "south-atlantic",
            cells: 110_000.0,
            refinement: 0,
        },
        Region {
            name: "caribbean",
            cells: 22_000.0,
            refinement: 3,
        },
        Region {
            name: "biscay",
            cells: 9_000.0,
            refinement: 1,
        },
        Region {
            name: "baffin",
            cells: 7_000.0,
            refinement: 0,
        },
        Region {
            name: "sargasso",
            cells: 30_000.0,
            refinement: 1,
        },
        Region {
            name: "canaries",
            cells: 12_000.0,
            refinement: 1,
        },
        Region {
            name: "falklands",
            cells: 16_000.0,
            refinement: 2,
        },
        Region {
            name: "greenland-sea",
            cells: 14_000.0,
            refinement: 1,
        },
        Region {
            name: "mid-ridge",
            cells: 48_000.0,
            refinement: 0,
        },
        Region {
            name: "guinea",
            cells: 18_000.0,
            refinement: 1,
        },
    ];

    let tasks: Vec<MalleableTask> = regions
        .iter()
        .map(|r| MalleableTask::named(r.name, region_profile(r, processors)))
        .collect();
    let instance = Instance::new(tasks, processors).expect("valid instance");

    println!(
        "Ocean remeshing step: {} regions on {} processors",
        instance.task_count(),
        instance.processors()
    );
    println!(
        "area lower bound = {:.3}, critical-region bound = {:.3}\n",
        malleable_core::bounds::area_bound(&instance),
        malleable_core::bounds::critical_task_bound(&instance)
    );

    // The paper's scheduler…
    let mrt = MrtScheduler::default().schedule(&instance).expect("mrt");
    // …against the practical baselines it improves on.
    let ludwig_schedule = ludwig(&instance).expect("ludwig");
    let gang = gang_schedule(&instance);
    let lpt = sequential_lpt(&instance);

    println!(
        "{}",
        comparison_row("MRT (sqrt(3))", &instance, &mrt.schedule)
    );
    println!(
        "{}",
        comparison_row("Ludwig two-phase", &instance, &ludwig_schedule)
    );
    println!("{}", comparison_row("gang scheduling", &instance, &gang));
    println!("{}", comparison_row("sequential LPT", &instance, &lpt));

    // Show how the MRT schedule allocated the heavy refined regions.
    println!("\nAllotment chosen by MRT for the five largest regions:");
    let mut entries: Vec<_> = mrt.schedule.entries().to_vec();
    entries.sort_by(|a, b| {
        (b.duration * b.processors.count as f64)
            .partial_cmp(&(a.duration * a.processors.count as f64))
            .unwrap()
    });
    for entry in entries.iter().take(5) {
        println!(
            "  {:<16} {:>3} processors for {:>6.3} time units",
            instance.task(entry.task).name.clone().unwrap_or_default(),
            entry.processors.count,
            entry.duration
        );
    }

    let trace = simulate(&instance, &mrt.schedule);
    println!(
        "\nmachine utilisation under MRT: {:.1}% (idle area {:.3})",
        100.0 * trace.utilization,
        trace.idle_area
    );
    assert!(mrt.schedule.validate(&instance).is_ok());
}
