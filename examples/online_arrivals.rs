//! Online arrivals: the same traffic stream scheduled by all three online
//! policies, compared against the clairvoyant offline MRT run.
//!
//! ```text
//! cargo run -p examples --release --example online_arrivals
//! ```

use online::policy::PolicyKind;
use workload::{ArrivalPattern, ArrivalTrace, TraceConfig, WorkloadConfig};

fn main() {
    // 80 mixed tasks arriving as a Poisson stream at 4 tasks per time unit
    // on a 16-processor machine.
    let trace = ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(80, 16, 42),
        pattern: ArrivalPattern::Poisson { rate: 4.0 },
    })
    .expect("trace generation succeeds");
    println!(
        "trace: {} arrivals on {} processors, last arrival at t = {:.2}\n",
        trace.len(),
        trace.processors(),
        trace.last_arrival()
    );

    // The clairvoyant baseline: all tasks known (and released) at t = 0.
    let offline = malleable_core::mrt::schedule(&trace.instance().unwrap())
        .expect("offline scheduling succeeds");
    println!(
        "offline mrt (clairvoyant): makespan = {:>7.3}   certified LB = {:.3}\n",
        offline.schedule.makespan(),
        offline.certified_lower_bound
    );

    // The offline planning oracles come from the workspace solver registry —
    // the same lookup the CLI's `--solver` flag uses.
    let registry = solver::default_registry();
    let policies = [
        PolicyKind::Greedy,
        PolicyKind::Epoch {
            period: 1.0,
            solver: registry.get("mrt").expect("registered"),
        },
        PolicyKind::Epoch {
            period: 1.0,
            solver: registry.get("ludwig").expect("registered"),
        },
        PolicyKind::Batch {
            solver: registry.get("mrt").expect("registered"),
        },
    ];
    println!(
        "{:<22} {:>9} {:>11} {:>11} {:>10} {:>8}",
        "policy", "makespan", "vs offline", "mean flow", "util", "replans"
    );
    for kind in policies {
        let mut policy = kind.build().expect("valid policy");
        let result = online::run(&trace, policy.as_mut()).expect("engine run succeeds");
        assert!(
            online::validate_against_trace(&trace, &result.schedule).is_empty(),
            "committed schedule must validate"
        );
        let report = online::competitive_report(&trace, &result).expect("report succeeds");
        println!(
            "{:<22} {:>9.3} {:>11.3} {:>11.3} {:>9.1}% {:>8}",
            result.policy,
            result.makespan,
            report.ratio_vs_offline.expect("tasks executed"),
            result.mean_flow_time,
            100.0 * result.utilization(),
            result.replans
        );
    }
    println!("\nevery policy pays a finite, measured price over the clairvoyant run;");
    println!("`malleable-sched online --json …` emits the same report machine-readably.");
}
