//! Quickstart: schedule a handful of malleable tasks with the √3 algorithm.
//!
//! ```text
//! cargo run -p mrt-examples --release --example quickstart
//! ```

use malleable_core::prelude::*;
use simulator::{render_gantt, simulate, validate_schedule};

fn main() {
    // A small machine and a mix of task shapes: a perfectly parallel solver,
    // two measured profiles with saturating speed-up, and sequential I/O jobs.
    let tasks = vec![
        MalleableTask::named("cfd-solver", SpeedupProfile::linear(16.0, 8).unwrap()),
        MalleableTask::named(
            "assembly",
            SpeedupProfile::new(vec![6.0, 3.3, 2.4, 2.0, 1.8, 1.7, 1.65, 1.62]).unwrap(),
        ),
        MalleableTask::named(
            "partitioner",
            SpeedupProfile::new(vec![3.0, 1.8, 1.4, 1.25]).unwrap(),
        ),
        MalleableTask::named("checkpoint-io", SpeedupProfile::sequential(1.1).unwrap()),
        MalleableTask::named("statistics", SpeedupProfile::sequential(0.7).unwrap()),
    ];
    let instance = Instance::new(tasks, 8).expect("valid instance");

    // One call: dual-approximation search around the MRT scheduler.
    let result = MrtScheduler::default()
        .schedule(&instance)
        .expect("scheduling succeeds");

    println!("== MRT (√3) schedule ==");
    for entry in result.schedule.entries() {
        let name = instance
            .task(entry.task)
            .name
            .clone()
            .unwrap_or_else(|| format!("task-{}", entry.task));
        println!(
            "  {:<16} start {:>6.2}  duration {:>6.2}  processors {:>2} (first = {})",
            name, entry.start, entry.duration, entry.processors.count, entry.processors.first
        );
    }
    println!();
    println!(
        "makespan          = {:.3}\ncertified lower bound = {:.3}\na-posteriori ratio    = {:.3}  (worst-case guarantee: √3 ≈ 1.732)",
        result.schedule.makespan(),
        result.certified_lower_bound,
        result.ratio()
    );

    // Replay the schedule on the simulator and double-check every invariant.
    let report = validate_schedule(&instance, &result.schedule, None);
    assert!(report.is_valid(), "violations: {:?}", report.violations);
    let trace = simulate(&instance, &result.schedule);
    println!(
        "utilisation           = {:.1}%   idle area = {:.3}",
        100.0 * trace.utilization,
        trace.idle_area
    );

    println!("\n{}", render_gantt(&instance, &result.schedule, 72));
}
