//! Scheduling a precedence-constrained workflow of malleable tasks — the
//! extension direction named in the paper's conclusion ("the natural
//! continuation of this work is to study the scheduling of precedence graphs
//! structures"), here on a small scientific-workflow DAG.
//!
//! ```text
//! cargo run -p mrt-examples --release --example workflow_dag
//! ```

use malleable_core::prelude::*;
use precedence::{CpaScheduler, LevelScheduler, PrecedenceInstance, TaskGraph};

fn amdahl(name: &str, work: f64, alpha: f64, m: usize) -> MalleableTask {
    MalleableTask::named(
        name,
        SpeedupProfile::from_fn(m, |p| work * (alpha + (1.0 - alpha) / p as f64)).unwrap(),
    )
}

fn main() {
    let m = 16usize;
    // A classic simulation → analysis → reduction workflow:
    //
    //          mesh ──► solve-a ──► analyse-a ─┐
    //                └► solve-b ──► analyse-b ─┼─► reduce ──► report
    //                └► solve-c ──► analyse-c ─┘
    let tasks = vec![
        amdahl("mesh", 6.0, 0.1, m),      // 0
        amdahl("solve-a", 18.0, 0.05, m), // 1
        amdahl("solve-b", 14.0, 0.05, m), // 2
        amdahl("solve-c", 10.0, 0.05, m), // 3
        amdahl("analyse-a", 4.0, 0.3, m), // 4
        amdahl("analyse-b", 4.0, 0.3, m), // 5
        amdahl("analyse-c", 4.0, 0.3, m), // 6
        amdahl("reduce", 5.0, 0.2, m),    // 7
        MalleableTask::named("report", SpeedupProfile::sequential(1.5).unwrap()), // 8
    ];
    let edges = vec![
        (0, 1),
        (0, 2),
        (0, 3),
        (1, 4),
        (2, 5),
        (3, 6),
        (4, 7),
        (5, 7),
        (6, 7),
        (7, 8),
    ];
    let graph = TaskGraph::new(tasks, edges).expect("valid DAG");
    let instance = PrecedenceInstance::new(graph, m).expect("valid instance");

    let lb = precedence::lower_bound(&instance);
    println!(
        "workflow of {} tasks on {} processors, lower bound = {:.3} (area {:.3}, critical path {:.3})\n",
        instance.graph.task_count(),
        m,
        lb,
        precedence::area_bound(&instance),
        precedence::critical_path_bound(&instance),
    );

    let level = LevelScheduler::default()
        .schedule(&instance)
        .expect("level");
    let cpa = CpaScheduler::default().schedule(&instance).expect("cpa");
    instance.validate(&level).expect("level schedule is valid");
    instance.validate(&cpa).expect("cpa schedule is valid");

    println!(
        "level-by-level MRT : makespan {:.3}  (ratio vs LB {:.3})",
        level.makespan(),
        level.makespan() / lb
    );
    println!(
        "CPA + list         : makespan {:.3}  (ratio vs LB {:.3})",
        cpa.makespan(),
        cpa.makespan() / lb
    );

    let best = if cpa.makespan() <= level.makespan() {
        &cpa
    } else {
        &level
    };
    println!("\nallotment of the better schedule:");
    for entry in best.entries() {
        println!(
            "  {:<10} start {:>6.2}  duration {:>6.2}  processors {:>2}",
            instance.graph.tasks()[entry.task]
                .name
                .clone()
                .unwrap_or_default(),
            entry.start,
            entry.duration,
            entry.processors.count
        );
    }
}
