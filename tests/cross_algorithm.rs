//! Cross-algorithm structural tests: every scheduler in the workspace agrees
//! on validity, and the paper's structural claims (two shelves, two levels,
//! canonical compression) are visible in the produced schedules.

use malleable_core::bounds;
use malleable_core::canonical::CanonicalAllotment;
use malleable_core::prelude::*;
use malleable_core::two_shelf::{self, TwoShelfParams};
use simulator::validate_schedule;
use workload::{WorkloadConfig, WorkloadGenerator};

#[test]
fn every_algorithm_schedules_every_task_exactly_once() {
    for seed in 0..6u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::mixed(18, 8, seed))
            .generate()
            .unwrap();
        let omega = bounds::upper_bound(&instance);
        let canonical = CanonicalAllotment::compute(&instance, omega).unwrap();

        let mut schedules: Vec<(String, Schedule)> = vec![
            (
                "canonical-list".into(),
                CanonicalListAlgorithm::default()
                    .build(&instance, omega)
                    .unwrap(),
            ),
            (
                "malleable-list".into(),
                MalleableListAlgorithm::default()
                    .build(&instance, omega)
                    .unwrap(),
            ),
            (
                "level-packing".into(),
                malleable_core::mrt::level_packing_schedule(&instance, &canonical),
            ),
            (
                "mrt".into(),
                MrtScheduler::default()
                    .schedule(&instance)
                    .unwrap()
                    .schedule,
            ),
            ("ludwig".into(), baselines::ludwig(&instance).unwrap()),
            ("gang".into(), baselines::gang_schedule(&instance)),
            ("lpt".into(), baselines::sequential_lpt(&instance)),
        ];
        if let Some(ts) = two_shelf::build(&instance, omega, TwoShelfParams::default()).unwrap() {
            schedules.push(("two-shelf".into(), ts.schedule));
        }

        for (name, schedule) in schedules {
            assert_eq!(
                schedule.len(),
                instance.task_count(),
                "{name} missed or duplicated tasks"
            );
            let report = validate_schedule(&instance, &schedule, None);
            assert!(report.is_valid(), "{name}: {:?}", report.violations);
        }
    }
}

#[test]
fn two_shelf_schedules_have_exactly_two_start_bands() {
    // In a λ-schedule every start time is either 0 (first shelf) or ω (second
    // shelf) or, for the First-Fit-stacked small tasks, at ω plus the heights
    // of the tasks below them — never anything below ω other than 0 and the
    // stacked offsets inside shelf 1 of the trivial construction.
    for seed in 0..8u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::wide_tasks(16, 24, seed))
            .generate()
            .unwrap();
        let lb = bounds::lower_bound(&instance);
        let omega = lb * 1.1;
        if let Ok(Some(ts)) = two_shelf::build(&instance, omega, TwoShelfParams::default()) {
            for entry in ts.schedule.entries() {
                let in_first_shelf = entry.finish() <= omega + 1e-6;
                let in_second_shelf = entry.start >= omega - 1e-6;
                assert!(
                    in_first_shelf || in_second_shelf,
                    "seed {seed}: task {} straddles the shelf boundary (start {}, finish {})",
                    entry.task,
                    entry.start,
                    entry.finish()
                );
            }
            assert!(ts.schedule.makespan() <= (1.0 + malleable_core::LAMBDA_SQRT3) * omega + 1e-6);
        }
    }
}

#[test]
fn canonical_compression_only_grows_processor_counts() {
    // Tasks moved to the second shelf are compressed: they use at least their
    // canonical processor count.
    for seed in 0..8u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::wide_tasks(14, 16, 40 + seed))
            .generate()
            .unwrap();
        let omega = bounds::lower_bound(&instance) * 1.05;
        let canonical = match CanonicalAllotment::compute(&instance, omega) {
            Ok(c) => c,
            Err(_) => continue,
        };
        if let Some(ts) =
            two_shelf::build_with_canonical(&instance, &canonical, TwoShelfParams::default())
        {
            for entry in ts.schedule.entries() {
                if ts.gamma.contains(&entry.task) {
                    assert!(
                        entry.processors.count >= canonical.allotment.processors(entry.task),
                        "compressed task {} uses fewer processors than its canonical count",
                        entry.task
                    );
                }
            }
        }
    }
}

#[test]
fn list_schedules_start_their_first_level_at_time_zero() {
    // The first level of the canonical list schedule (the tasks placed while
    // processors are still free at time 0) must all start at 0 — this is the
    // structural property the paper's §3 analysis rests on.
    let instance = WorkloadGenerator::new(WorkloadConfig::mixed(20, 10, 3))
        .generate()
        .unwrap();
    let omega = bounds::upper_bound(&instance);
    let schedule = CanonicalListAlgorithm::default()
        .build(&instance, omega)
        .unwrap();
    let starters = schedule
        .entries()
        .iter()
        .filter(|e| e.start <= 1e-12)
        .map(|e| e.processors.count)
        .sum::<usize>();
    assert!(starters >= 1, "someone must start at time zero");
    assert!(starters <= instance.processors());
}

#[test]
fn registry_solvers_match_their_legacy_entry_points() {
    // Zero behavioural drift: for every solver in the registry, solving
    // through the unified `SolveRequest → Solver → SolveOutcome` pipeline
    // produces the *identical* schedule (not just makespan) as the legacy
    // direct entry point it replaced, across a seeded instance sweep.
    use baselines::{RigidScheduler, TwoPhaseScheduler};
    use malleable_core::Allotment;

    let registry = solver::default_registry();
    for seed in 0..5u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::mixed(16, 8, 100 + seed))
            .generate()
            .unwrap();
        for name in registry.names() {
            let outcome = registry
                .get(name)
                .unwrap()
                .solve(&SolveRequest::new(&instance))
                .unwrap();
            let legacy: Schedule = match name {
                "mrt" => {
                    MrtScheduler::default()
                        .schedule(&instance)
                        .unwrap()
                        .schedule
                }
                "list" => {
                    let omega = bounds::upper_bound(&instance);
                    let allotment = Allotment::canonical(&instance, omega).unwrap();
                    schedule_rigid(&instance, &allotment, ListOrder::DecreasingAllottedTime)
                }
                "ludwig" => baselines::ludwig(&instance).unwrap(),
                "twy-list" => TwoPhaseScheduler {
                    rigid: RigidScheduler::List,
                }
                .schedule(&instance)
                .unwrap(),
                "twy-nfdh" => TwoPhaseScheduler {
                    rigid: RigidScheduler::Nfdh,
                }
                .schedule(&instance)
                .unwrap(),
                "gang" => baselines::gang_schedule(&instance),
                "lpt" => baselines::sequential_lpt(&instance),
                // Without a `machine-classes` config the classed solvers run
                // on the uniform single-class cluster — the identical-machines
                // special case, which must reproduce the paper's solver.
                "hetero-lp" | "hetero-greedy" => {
                    MrtScheduler::default()
                        .schedule(&instance)
                        .unwrap()
                        .schedule
                }
                "precedence" => {
                    let graph =
                        precedence::TaskGraph::independent(instance.tasks().to_vec()).unwrap();
                    let pinstance =
                        precedence::PrecedenceInstance::new(graph, instance.processors()).unwrap();
                    precedence::CpaScheduler::default()
                        .schedule(&pinstance)
                        .unwrap()
                }
                other => panic!("no legacy entry point mapped for solver `{other}`"),
            };
            assert_eq!(
                outcome.schedule, legacy,
                "seed {seed}: solver `{name}` drifted from its legacy entry point"
            );
            assert!(
                (outcome.makespan() - legacy.makespan()).abs() < 1e-12,
                "seed {seed}: solver `{name}` makespan drifted"
            );
        }
    }
}

#[test]
fn registry_exact_mode_matches_legacy_schedule_with() {
    // The request's search-mode knob reproduces the legacy
    // `MrtScheduler::schedule_with` exact-search entry point too.
    for seed in 0..3u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::mixed(14, 8, 200 + seed))
            .generate()
            .unwrap();
        let outcome = solver::default_registry()
            .get("mrt")
            .unwrap()
            .solve(&SolveRequest::new(&instance).with_mode(SearchMode::Exact))
            .unwrap();
        let legacy = MrtScheduler::default()
            .schedule_with(&instance, SearchMode::Exact)
            .unwrap();
        assert_eq!(outcome.schedule, legacy.schedule, "seed {seed}");
        assert!((outcome.lower_bound - legacy.certified_lower_bound).abs() < 1e-12);
        assert_eq!(outcome.probes, legacy.probes);
    }
}

#[test]
fn mrt_beats_or_matches_its_own_branches() {
    // The combined scheduler keeps the best branch, so it can never be worse
    // than the canonical list or the malleable list run in isolation at the
    // same guess.
    for seed in 0..6u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::mixed(22, 12, 70 + seed))
            .generate()
            .unwrap();
        let omega = bounds::upper_bound(&instance);
        let scheduler = MrtScheduler::default();
        let (outcome, _) = scheduler.probe_with_report(&instance, omega);
        let combined = match outcome {
            DualOutcome::Feasible(s) => s,
            DualOutcome::Infeasible => panic!("generous ω rejected"),
        };
        let canonical = CanonicalListAlgorithm::default()
            .build(&instance, omega)
            .unwrap();
        let mla = MalleableListAlgorithm::default()
            .build(&instance, omega)
            .unwrap();
        assert!(combined.makespan() <= canonical.makespan() + 1e-9);
        assert!(combined.makespan() <= mla.makespan() + 1e-9);
    }
}
