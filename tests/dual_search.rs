//! Behaviour of the dual-approximation dichotomic search (§2.2 of the paper):
//! convergence with the number of probes, monotonicity of the oracles, and
//! consistency of the certified bounds.

use malleable_core::bounds;
use malleable_core::prelude::*;
use workload::{WorkloadConfig, WorkloadGenerator};

fn instance(seed: u64) -> Instance {
    WorkloadGenerator::new(WorkloadConfig::mixed(25, 12, seed))
        .generate()
        .unwrap()
}

#[test]
fn interval_shrinks_geometrically_with_iterations() {
    let inst = instance(1);
    let scheduler = MrtScheduler::default();
    let mut previous_gap = f64::INFINITY;
    for iterations in [1usize, 4, 8, 16, 32] {
        let result = DualSearch::with_iterations(iterations)
            .solve(&inst, &scheduler)
            .unwrap();
        let gap = result.feasible_omega - result.certified_lower_bound;
        assert!(
            gap <= previous_gap + 1e-9,
            "gap must not grow with iterations"
        );
        previous_gap = gap;
    }
    // After 32 iterations the interval is essentially closed.
    assert!(previous_gap <= 1e-3 * bounds::upper_bound(&inst));
}

#[test]
fn probe_count_matches_iteration_budget() {
    let inst = instance(2);
    let scheduler = MrtScheduler::default();
    let result = DualSearch {
        iterations: 10,
        relative_tolerance: 0.0,
        ..Default::default()
    }
    .solve(&inst, &scheduler)
    .unwrap();
    // 1 probe to validate the upper end (it is feasible) + 10 bisections.
    assert_eq!(result.probes, 11);
}

#[test]
fn probe_cap_bounds_both_search_modes() {
    let inst = instance(4);
    let scheduler = MrtScheduler::default();
    let capped = DualSearch::with_probe_cap(3);
    let mut ws = ProbeWorkspace::new();
    for mode in [SearchMode::Bisect, SearchMode::Exact] {
        let result = capped
            .solve_guided(&inst, &scheduler, mode, None, &mut ws)
            .unwrap();
        // The cap plus the single climb probe establishing feasibility.
        assert!(result.probes <= 4, "{mode:?}: {} probes", result.probes);
        assert!(result.schedule.validate(&inst).is_ok());
        assert!(result.schedule.makespan() >= result.certified_lower_bound - 1e-9);
    }
}

#[test]
fn all_oracles_are_monotone_in_omega() {
    let inst = instance(3);
    let lb = bounds::lower_bound(&inst);
    let ub = bounds::upper_bound(&inst);
    let oracles: Vec<Box<dyn DualApproximation>> = vec![
        Box::new(MrtScheduler::default()),
        Box::new(CanonicalListAlgorithm::default()),
        Box::new(MalleableListAlgorithm::default()),
    ];
    for oracle in &oracles {
        let mut previous_feasible = false;
        let steps = 24;
        for i in 0..=steps {
            let omega = lb * 0.3 + (ub * 1.2 - lb * 0.3) * i as f64 / steps as f64;
            let feasible = oracle.probe(&inst, omega).is_feasible();
            assert!(
                feasible || !previous_feasible,
                "{} lost feasibility when ω grew",
                oracle.name()
            );
            previous_feasible = feasible;
        }
        assert!(
            previous_feasible,
            "{} must accept a generous ω",
            oracle.name()
        );
    }
}

#[test]
fn certified_bound_reaches_the_true_optimum_on_closed_form_instances() {
    // n identical perfectly-parallel tasks on m processors: OPT = n·w/m.
    let n = 10usize;
    let m = 8usize;
    let w = 4.0;
    let inst = Instance::from_profiles(
        (0..n)
            .map(|_| SpeedupProfile::linear(w, m).unwrap())
            .collect(),
        m,
    )
    .unwrap();
    let opt = n as f64 * w / m as f64;
    let result = DualSearch::with_iterations(40)
        .solve(&inst, &MrtScheduler::default())
        .unwrap();
    assert!(result.certified_lower_bound >= opt - 1e-6);
    assert!(result.schedule.makespan() <= malleable_core::SQRT3 * opt + 1e-6);
}

#[test]
fn guarantee_metadata_is_reported() {
    let inst = instance(4);
    let scheduler = MrtScheduler::default();
    assert_eq!(scheduler.name(), "mrt-sqrt3");
    assert!((scheduler.guarantee(&inst) - malleable_core::SQRT3).abs() < 1e-9);
    let canonical = CanonicalListAlgorithm::default();
    assert!((canonical.guarantee(&inst) - 3f64.sqrt()).abs() < 1e-9);
    let mla = MalleableListAlgorithm::default();
    assert!(mla.guarantee(&inst) > 1.0 && mla.guarantee(&inst) < 3.0);
}
