//! End-to-end pipeline tests: workload generation → scheduling → simulation.

use baselines::{gang_schedule, ludwig, sequential_lpt};
use malleable_core::bounds;
use malleable_core::prelude::*;
use simulator::{simulate, validate_schedule};
use workload::{WorkloadConfig, WorkloadGenerator};

fn schedule_and_check(instance: &Instance) -> SearchResult {
    let result = MrtScheduler::default()
        .schedule(instance)
        .expect("MRT scheduling succeeds");
    let report = validate_schedule(instance, &result.schedule, None);
    assert!(
        report.is_valid(),
        "simulator found violations: {:?}",
        report.violations
    );
    let trace = simulate(instance, &result.schedule);
    assert!((trace.makespan - result.schedule.makespan()).abs() < 1e-9);
    assert!(trace.peak_busy <= instance.processors());
    result
}

#[test]
fn mixed_workloads_schedule_cleanly() {
    for seed in 0..10u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::mixed(30, 16, seed))
            .generate()
            .unwrap();
        let result = schedule_and_check(&instance);
        assert!(result.ratio() <= malleable_core::SQRT3 + 0.02);
    }
}

#[test]
fn wide_task_workloads_exercise_the_knapsack_branch() {
    for seed in 0..10u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::wide_tasks(24, 32, seed))
            .generate()
            .unwrap();
        let result = schedule_and_check(&instance);
        assert!(
            result.ratio() <= malleable_core::SQRT3 + 0.02,
            "seed {seed}: ratio {}",
            result.ratio()
        );
    }
}

#[test]
fn sequential_heavy_workloads_degenerate_to_lpt_quality() {
    for seed in 0..10u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::sequential_heavy(60, 8, seed))
            .generate()
            .unwrap();
        let result = schedule_and_check(&instance);
        // LPT territory: the ratio should be well below the malleable bound.
        assert!(
            result.ratio() <= 1.5,
            "seed {seed}: ratio {}",
            result.ratio()
        );
    }
}

#[test]
fn mrt_never_loses_badly_to_any_baseline() {
    // The √3 algorithm may be beaten on specific instances by a specialised
    // baseline (e.g. gang scheduling on perfectly parallel work), but it must
    // stay within its guarantee of the *best* baseline everywhere.
    for seed in 0..8u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::mixed(25, 16, 100 + seed))
            .generate()
            .unwrap();
        let mrt = schedule_and_check(&instance);
        let best_baseline = [
            ludwig(&instance).unwrap().makespan(),
            gang_schedule(&instance).makespan(),
            sequential_lpt(&instance).makespan(),
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);
        assert!(
            mrt.schedule.makespan() <= malleable_core::SQRT3 * best_baseline + 1e-9,
            "seed {seed}: MRT {} vs best baseline {best_baseline}",
            mrt.schedule.makespan()
        );
    }
}

#[test]
fn baselines_are_valid_on_every_family() {
    for seed in 0..5u64 {
        for config in [
            WorkloadConfig::mixed(20, 8, seed),
            WorkloadConfig::wide_tasks(15, 16, seed),
            WorkloadConfig::sequential_heavy(30, 4, seed),
        ] {
            let instance = WorkloadGenerator::new(config).generate().unwrap();
            for schedule in [
                ludwig(&instance).unwrap(),
                gang_schedule(&instance),
                sequential_lpt(&instance),
            ] {
                let report = validate_schedule(&instance, &schedule, None);
                assert!(report.is_valid(), "violations: {:?}", report.violations);
                assert!(schedule.makespan() >= bounds::lower_bound(&instance) - 1e-9);
            }
        }
    }
}

#[test]
fn single_processor_machines_are_handled() {
    let instance = WorkloadGenerator::new(WorkloadConfig::sequential_heavy(12, 1, 3))
        .generate()
        .unwrap();
    let result = schedule_and_check(&instance);
    // On one processor every schedule is a permutation: makespan = total work.
    assert!((result.schedule.makespan() - instance.total_sequential_work()).abs() < 1e-6);
}

#[test]
fn tiny_instances_are_handled() {
    let instance =
        Instance::from_profiles(vec![SpeedupProfile::sequential(0.5).unwrap()], 4).unwrap();
    let result = schedule_and_check(&instance);
    assert!((result.schedule.makespan() - 0.5).abs() < 1e-9);
}
