//! Equivalence and regression tests for the breakpoint-exact dual search
//! (`DualSearch::solve_exact`) against the classical midpoint bisection, plus
//! the allocation-free probe invariant of the reusable `ProbeWorkspace`.

use malleable_core::breakpoints;
use malleable_core::prelude::*;
use proptest::prelude::*;
use workload::{WorkloadConfig, WorkloadGenerator};

fn mixed_instance(tasks: usize, processors: usize, seed: u64) -> Instance {
    WorkloadGenerator::new(WorkloadConfig::mixed(tasks, processors, seed))
        .generate()
        .unwrap()
}

fn wide_instance(tasks: usize, processors: usize, seed: u64) -> Instance {
    WorkloadGenerator::new(WorkloadConfig::wide_tasks(tasks, processors, seed))
        .generate()
        .unwrap()
}

fn sequential_instance(tasks: usize, processors: usize, seed: u64) -> Instance {
    WorkloadGenerator::new(WorkloadConfig::sequential_heavy(tasks, processors, seed))
        .generate()
        .unwrap()
}

/// `⌈log₂(n·m)⌉ + O(1)`: the probe budget the exact search must respect.
/// The additive constant covers the upper-end validation probe and the
/// bounded quality-descent phase.
fn probe_budget(tasks: usize, processors: usize) -> usize {
    ((tasks * processors) as f64).log2().ceil() as usize
        + malleable_core::dual::EXACT_QUALITY_PROBES
        + 2
}

#[test]
fn exact_search_is_never_worse_than_bisection() {
    let scheduler = MrtScheduler::default();
    let search = DualSearch::default();
    for (family, build) in [
        ("mixed", mixed_instance as fn(usize, usize, u64) -> Instance),
        ("wide", wide_instance),
        ("sequential", sequential_instance),
    ] {
        for seed in 0..6u64 {
            let inst = build(18, 12, seed);
            let bisect = search.solve(&inst, &scheduler).unwrap();
            let exact = search.solve_exact(&inst, &scheduler).unwrap();
            assert!(exact.schedule.validate(&inst).is_ok());
            // Only *feasibility* is piecewise-constant between breakpoints;
            // branch quality (the two-shelf construction in particular) moves
            // continuously with ω, so the two searches sample slightly
            // different interior points and strict per-instance dominance is
            // not a theorem.  The exact mode's quality descent closes the gap
            // to well under 1% across the seeded families.
            assert!(
                exact.schedule.makespan() <= bisect.schedule.makespan() * 1.01 + 1e-9,
                "{family}/{seed}: exact {} worse than bisect {}",
                exact.schedule.makespan(),
                bisect.schedule.makespan()
            );
            assert!(
                exact.certified_lower_bound >= bisect.certified_lower_bound - 1e-9,
                "{family}/{seed}: exact bound {} below bisect bound {}",
                exact.certified_lower_bound,
                bisect.certified_lower_bound
            );
            assert!(exact.schedule.makespan() >= exact.certified_lower_bound - 1e-9);
        }
    }
}

#[test]
fn exact_certified_bound_sits_on_a_breakpoint() {
    let scheduler = MrtScheduler::default();
    for seed in 0..6u64 {
        let inst = mixed_instance(20, 10, seed);
        let result = DualSearch::default()
            .solve_exact(&inst, &scheduler)
            .unwrap();
        let static_lb = malleable_core::bounds::lower_bound(&inst);
        let on_breakpoint = breakpoints::collect(&inst)
            .iter()
            .any(|&b| (b - result.certified_lower_bound).abs() <= 1e-12);
        assert!(
            on_breakpoint || (result.certified_lower_bound - static_lb).abs() <= 1e-12,
            "seed {seed}: certified bound {} is neither a breakpoint nor the static bound",
            result.certified_lower_bound
        );
    }
}

#[test]
fn exact_search_respects_the_probe_budget() {
    let scheduler = MrtScheduler::default();
    for (tasks, processors) in [(20, 8), (50, 16), (80, 32)] {
        for seed in 0..4u64 {
            let inst = mixed_instance(tasks, processors, seed);
            let result = DualSearch::default()
                .solve_exact(&inst, &scheduler)
                .unwrap();
            let budget = probe_budget(tasks, processors);
            assert!(
                result.probes <= budget,
                "n={tasks} m={processors} seed={seed}: {} probes exceed budget {budget}",
                result.probes
            );
        }
    }
}

#[test]
fn exact_uses_at_most_half_the_probes_of_bisection() {
    // The acceptance target of the PR: ≥ 2× fewer oracle probes per solve.
    let scheduler = MrtScheduler::default();
    let search = DualSearch::default();
    for seed in 0..4u64 {
        let inst = mixed_instance(60, 16, seed);
        let bisect = search.solve(&inst, &scheduler).unwrap();
        let exact = search.solve_exact(&inst, &scheduler).unwrap();
        assert!(
            2 * exact.probes <= bisect.probes,
            "seed {seed}: exact used {} probes vs bisect {}",
            exact.probes,
            bisect.probes
        );
    }
}

#[test]
fn workspace_probes_are_allocation_free_in_steady_state() {
    // The invariant is observed purely through the telemetry counters that
    // `EpochReplan` publishes per solve (`workspace.probes` /
    // `workspace.grow_events` deltas) — the same path the CLI and the
    // probe report read — rather than by poking the workspace directly.
    use online::policy::EpochReplan;
    use telemetry::{names, CollectingRecorder, SharedRecorder};
    use workload::{ArrivalPattern, ArrivalTrace, TraceConfig};

    let trace = ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(40, 16, 7),
        pattern: ArrivalPattern::Bursty {
            burst_size: 8,
            burst_gap: 2.0,
        },
    })
    .unwrap();

    // Warm-up run: the first epochs size every workspace buffer.
    let warmup = CollectingRecorder::shared();
    let mut policy = EpochReplan::mrt(1.0)
        .unwrap()
        .with_recorder(warmup.clone() as SharedRecorder);
    online::run_recorded(&trace, &mut policy, warmup.as_ref()).unwrap();
    assert!(warmup.counter(names::WORKSPACE_PROBES) > 0);

    // Steady state: replaying the identical trace on the warm policy (the
    // engine is deterministic, so every epoch's pending set recurs) must
    // not grow a single buffer.
    let steady = CollectingRecorder::shared();
    let mut policy = policy.with_recorder(steady.clone() as SharedRecorder);
    online::run_recorded(&trace, &mut policy, steady.as_ref()).unwrap();
    assert!(steady.counter(names::WORKSPACE_PROBES) > 0);
    assert_eq!(
        steady.counter(names::WORKSPACE_GROW_EVENTS),
        0,
        "steady-state probes grew workspace buffers"
    );
}

#[test]
fn parallel_branches_match_the_sequential_probe() {
    let sequential = MrtScheduler::default();
    let parallel = MrtScheduler {
        parallel_branches: true,
        ..Default::default()
    };
    for seed in 0..4u64 {
        let inst = mixed_instance(24, 12, seed);
        let omega = malleable_core::bounds::upper_bound(&inst);
        for guess in [omega, 0.7 * omega, 0.4 * omega] {
            let (a, report_a) = sequential.probe_with_report(&inst, guess);
            let (b, report_b) = parallel.probe_with_report(&inst, guess);
            assert_eq!(a.is_feasible(), b.is_feasible(), "seed {seed} ω={guess}");
            match (report_a.makespan, report_b.makespan) {
                (Some(ma), Some(mb)) => assert!(
                    (ma - mb).abs() <= 1e-9,
                    "seed {seed} ω={guess}: {ma} vs {mb}"
                ),
                (None, None) => {}
                other => panic!("seed {seed} ω={guess}: mismatched outcomes {other:?}"),
            }
        }
    }
}

#[test]
fn warm_started_epoch_replan_stays_valid_and_competitive() {
    use malleable_core::MrtSolver;
    use online::policy::EpochReplan;
    use std::sync::Arc;
    use workload::{ArrivalPattern, ArrivalTrace, TraceConfig};

    let trace = ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(80, 16, 11),
        pattern: ArrivalPattern::Poisson { rate: 6.0 },
    })
    .unwrap();

    let mut warm_exact = EpochReplan::mrt(1.0).unwrap();
    let warm = online::run(&trace, &mut warm_exact).unwrap();
    assert!(online::validate_against_trace(&trace, &warm.schedule).is_empty());

    let mut cold_bisect = EpochReplan::with_solver(1.0, Arc::new(MrtSolver))
        .unwrap()
        .with_search(SearchMode::Bisect);
    let cold = online::run(&trace, &mut cold_bisect).unwrap();
    assert!(online::validate_against_trace(&trace, &cold.schedule).is_empty());

    // Competitive quality unchanged up to search slack.
    let warm_report = online::competitive_report(&trace, &warm).unwrap();
    let cold_report = online::competitive_report(&trace, &cold).unwrap();
    let (warm_ratio, cold_ratio) = (
        warm_report.ratio_vs_lower_bound.unwrap(),
        cold_report.ratio_vs_lower_bound.unwrap(),
    );
    assert!(
        warm_ratio <= cold_ratio * 1.05 + 1e-9,
        "warm {warm_ratio} vs cold {cold_ratio}"
    );
    // The warm-started exact path does strictly less oracle work.
    assert!(
        warm_exact.probes() < cold_bisect.probes(),
        "warm path used {} probes vs cold {}",
        warm_exact.probes(),
        cold_bisect.probes()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Across the seeded mixed-instance families: the exact search returns a
    /// makespan no worse than the bisection search's, a certified bound no
    /// lower, and stays within the probe budget.
    #[test]
    fn exact_search_dominates_generic(seed in 0u64..200, tasks in 4usize..30, m in 4usize..20) {
        let inst = mixed_instance(tasks, m, seed);
        let scheduler = MrtScheduler::default();
        let search = DualSearch::default();
        let bisect = search.solve(&inst, &scheduler).unwrap();
        let exact = search.solve_exact(&inst, &scheduler).unwrap();
        prop_assert!(exact.schedule.validate(&inst).is_ok());
        // See `exact_search_is_never_worse_than_bisection` for why a 1%
        // slack is needed: quality is not piecewise-constant between
        // breakpoints, only feasibility is.
        prop_assert!(exact.schedule.makespan() <= bisect.schedule.makespan() * 1.01 + 1e-9,
            "exact {} > bisect {}", exact.schedule.makespan(), bisect.schedule.makespan());
        prop_assert!(exact.certified_lower_bound >= bisect.certified_lower_bound - 1e-9);
        prop_assert!(exact.probes <= probe_budget(tasks, m));
    }
}
