//! Workspace-level tests of the fault-tolerant online engine: a
//! hand-computed crash-recovery scenario cross-checked against the
//! simulator's piecewise validator, property tests sweeping random seeded
//! fault plans over bursty traces, and the `std::error::Error` conformance
//! of the workspace's typed errors (they must box through `?`).

use std::collections::HashSet;

use malleable_core::{MalleableTask, SpeedupProfile};
use online::policy::{EpochReplan, GreedyList, OnlinePolicy};
use packing::reservations::{HolePolicy, ReservationError, ReservationTimeline};
use proptest::prelude::*;
use workload::{
    Arrival, ArrivalPattern, ArrivalTrace, DeparturePolicy, FaultConfig, FaultPlan, RetryPolicy,
    TraceConfig, WorkloadConfig,
};

/// A crash mid-execution, worked out by hand.  One linear task of work 6 on
/// 2 processors commits as `[0, 3) × 2`.  Processor 1 dies at t=1 with a
/// third of the work done (linear speed-up), so the conserved residual
/// (remaining 2/3 of the work, sequential time 6) restarts on processor 0
/// alone: `[1, 5) × 1`, makespan 5.
#[test]
fn crash_recovery_scenario_is_exact() {
    let trace = ArrivalTrace::new(
        2,
        vec![Arrival::new(
            0.0,
            MalleableTask::new(SpeedupProfile::linear(6.0, 2).unwrap()),
        )],
    )
    .unwrap();
    let plan = FaultPlan::empty(2, 16.0).with_outage(1, 1.0, 10.0);
    let result = online::run_with_faults(
        &trace,
        &mut GreedyList::new(),
        &plan,
        RetryPolicy::default(),
        None,
    )
    .unwrap();

    assert_eq!(result.crashes, 1);
    assert_eq!(result.repairs, 1);
    assert!((result.makespan - 5.0).abs() < 1e-9);
    assert_eq!(
        result.schedule.len(),
        2,
        "one conserved head + one residual"
    );
    let entries = result.schedule.entries();
    assert!((entries[0].start).abs() < 1e-9);
    assert!((entries[0].duration - 1.0).abs() < 1e-9);
    assert_eq!(entries[0].processors.count, 2);
    assert!((entries[1].start - 1.0).abs() < 1e-9);
    assert!((entries[1].duration - 4.0).abs() < 1e-9);
    assert_eq!(entries[1].processors.count, 1);

    // Nothing was lost: the two segments conserve the task's work, which
    // the simulator's piecewise validator checks independently.
    assert!(result.wasted.is_empty());
    assert!((result.goodput_fraction() - 1.0).abs() < 1e-12);
    let report =
        simulator::validate_piecewise_subset(&trace.instance().unwrap(), &result.schedule, None);
    assert!(report.is_valid(), "{:?}", report.violations);

    // Capacity lost to the outage: processor 1 from t=1 to the makespan,
    // so the integral is 2×5 − 4 = 6 — exactly the busy time, hence a
    // time-weighted utilisation of 1 while the nominal figure sees the
    // machine 60% idle.
    assert!((result.capacity_integral - 6.0).abs() < 1e-9);
    assert!((result.time_weighted_utilization() - 1.0).abs() < 1e-9);
    assert!((result.nominal_utilization() - 0.6).abs() < 1e-9);
    assert!(online::validate_fault_run(&trace, &result).is_empty());
}

fn bursty_trace(tasks: usize, processors: usize, seed: u64) -> ArrivalTrace {
    ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(tasks, processors, seed),
        pattern: ArrivalPattern::Bursty {
            burst_size: 8,
            burst_gap: 2.0,
        },
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Random seeded fault plans over bursty traces, with and without
    /// departure deadlines, under both the greedy and the epoch re-planning
    /// policies: the fault-aware validator passes (no overlap among
    /// executed or wasted segments, nothing placed inside an outage), every
    /// submitted task is accounted for, and the degradation figures stay
    /// within their ranges.
    #[test]
    fn seeded_fault_plans_degrade_gracefully(
        tasks in 16usize..36,
        seed in 0u64..1000,
        mtbf in 5.0f64..40.0,
        failure_rate in 0.0f64..0.3,
        patience in 0usize..2,
        epoch in 0usize..2,
    ) {
        let mut trace = bursty_trace(tasks, 8, seed);
        if patience == 1 {
            trace = trace
                .with_departures(DeparturePolicy::Patience { mean: 6.0 }, seed)
                .unwrap();
        }
        let retry = RetryPolicy::default();
        let horizon = (trace.last_arrival() + 1.0) * 4.0;
        let plan = FaultPlan::generate(
            &FaultConfig::new(8, trace.len(), horizon, seed)
                .with_crashes(mtbf, 2.0)
                .with_task_failures(failure_rate, retry.max_attempts),
        )
        .unwrap();
        let mut policy: Box<dyn OnlinePolicy> = if epoch == 1 {
            Box::new(EpochReplan::mrt(1.0).unwrap())
        } else {
            Box::new(GreedyList::new())
        };
        let result =
            online::run_with_faults(&trace, policy.as_mut(), &plan, retry, None).unwrap();

        let violations = online::validate_fault_run(&trace, &result);
        prop_assert!(violations.is_empty(), "{violations:?}");

        // No lost tasks: completed + departed + abandoned partitions the
        // submissions.
        let completed: HashSet<usize> =
            result.schedule.entries().iter().map(|e| e.task).collect();
        prop_assert_eq!(
            completed.len() + result.departed + result.abandoned.len(),
            trace.len()
        );
        prop_assert_eq!(result.abandoned.len(), result.retries_exhausted);

        // The degradation figures: goodput and both utilisations are
        // proper fractions, and the online capacity bounds the busy time.
        let goodput = result.goodput_fraction();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&goodput), "goodput {}", goodput);
        prop_assert!(result.wasted_integral >= -1e-9);
        prop_assert!(
            result.busy_integral <= result.capacity_integral + 1e-6,
            "busy {} exceeds online capacity {}",
            result.busy_integral,
            result.capacity_integral
        );
        let tw = result.time_weighted_utilization();
        prop_assert!((0.0..=1.0 + 1e-6).contains(&tw), "utilisation {}", tw);
        prop_assert!(result.nominal_utilization() <= tw + 1e-9);
    }
}

// A quiet plan (no outages, no failures) must reproduce the fault-free run
// bit for bit, whatever the trace.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn quiet_plans_are_observationally_fault_free(
        tasks in 12usize..24,
        seed in 0u64..1000,
    ) {
        let trace = bursty_trace(tasks, 8, seed);
        let baseline = online::run(&trace, &mut GreedyList::new()).unwrap();
        let plan = FaultPlan::empty(8, (trace.last_arrival() + 1.0) * 4.0);
        prop_assert!(plan.is_quiet());
        let faulted = online::run_with_faults(
            &trace,
            &mut GreedyList::new(),
            &plan,
            RetryPolicy::default(),
            None,
        )
        .unwrap();
        prop_assert_eq!(baseline.schedule.len(), faulted.schedule.len());
        prop_assert!((baseline.makespan - faulted.makespan).abs() < 1e-12);
        prop_assert!((faulted.goodput_fraction() - 1.0).abs() < 1e-12);
    }
}

/// The workspace's typed errors implement `std::error::Error` + `Display`:
/// they must flow through `?` into a `Box<dyn Error>` (the conventional
/// application-level error sink) and keep their messages.
#[test]
fn typed_errors_box_through_question_mark() {
    fn double_cancel() -> Result<(), Box<dyn std::error::Error>> {
        let mut timeline = ReservationTimeline::new(2, HolePolicy::default());
        let id = timeline.reserve(0, 1, 0.0, 1.0);
        timeline.cancel(id)?;
        timeline.cancel(id)?;
        Ok(())
    }
    let err = double_cancel().unwrap_err();
    assert!(
        err.to_string().contains("already cancelled"),
        "unexpected message: {err}"
    );
    assert!(err.downcast_ref::<ReservationError>().is_some());

    fn invalid_profile() -> Result<(), Box<dyn std::error::Error>> {
        SpeedupProfile::sequential(-1.0)?;
        Ok(())
    }
    let err = invalid_profile().unwrap_err();
    assert!(
        err.downcast_ref::<malleable_core::Error>().is_some(),
        "expected a malleable_core::Error, got: {err}"
    );
    assert!(
        err.to_string().contains("invalid"),
        "unexpected message: {err}"
    );
}
