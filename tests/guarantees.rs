//! Worst-case guarantee tests: the measured approximation ratios never exceed
//! the bounds the paper claims (plus the dichotomic-search slack).

use malleable_core::bounds;
use malleable_core::prelude::*;
use workload::{WorkloadConfig, WorkloadGenerator};

const SEARCH_SLACK: f64 = 0.02;

fn ratio_of(instance: &Instance) -> f64 {
    MrtScheduler::default()
        .schedule(instance)
        .expect("scheduling succeeds")
        .ratio()
}

#[test]
fn sqrt3_guarantee_holds_across_families_on_moderate_machines() {
    let mut checked = 0usize;
    for m in [8usize, 16, 32] {
        for seed in 0..6u64 {
            for config in [
                WorkloadConfig::mixed(30, m, seed),
                WorkloadConfig::wide_tasks(20, m, seed),
                WorkloadConfig::sequential_heavy(40, m, seed),
            ] {
                let instance = WorkloadGenerator::new(config).generate().unwrap();
                let ratio = ratio_of(&instance);
                assert!(
                    ratio <= malleable_core::SQRT3 + SEARCH_SLACK,
                    "ratio {ratio} exceeds √3 on m = {m}, seed = {seed}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 50, "the sweep must cover a meaningful sample");
}

#[test]
fn small_machines_stay_within_two() {
    // Below m_λ the paper's λ-schedule existence is not asserted; the list
    // branches still keep the combined scheduler within 2.
    for m in [2usize, 3, 4, 5] {
        for seed in 0..8u64 {
            let instance = WorkloadGenerator::new(WorkloadConfig::mixed(15, m, seed))
                .generate()
                .unwrap();
            let ratio = ratio_of(&instance);
            assert!(ratio <= 2.0 + 1e-6, "ratio {ratio} exceeds 2 on m = {m}");
        }
    }
}

#[test]
fn adversarial_equal_wide_tasks() {
    // k tasks that each need just over half the machine: no two can run in
    // parallel at their canonical count — the shape that defeats naive area
    // arguments.  The two-shelf construction (or compression) must keep the
    // ratio at √3.
    for m in [8usize, 12, 16] {
        let half_plus = m / 2 + 1;
        let profile = SpeedupProfile::from_fn(m, |p| {
            // Work 1.0·half_plus, linear speed-up capped so canonical count at
            // deadline 1 is exactly half_plus.
            half_plus as f64 / p as f64
        })
        .unwrap();
        let instance =
            Instance::from_profiles(vec![profile.clone(), profile.clone(), profile], m).unwrap();
        let ratio = ratio_of(&instance);
        assert!(
            ratio <= malleable_core::SQRT3 + SEARCH_SLACK,
            "ratio {ratio} on m = {m}"
        );
    }
}

#[test]
fn graham_style_lpt_worst_case_is_absorbed() {
    // The classical LPT worst case (2m+1 jobs of sizes 2m-1 … m) keeps plain
    // LPT at 4/3 − 1/(3m); the malleable scheduler must not do worse.
    let m = 6usize;
    let mut durations = Vec::new();
    for k in 0..m {
        durations.push((2 * m - 1 - k) as f64);
        durations.push((2 * m - 1 - k) as f64);
    }
    durations.push(m as f64);
    let instance = Instance::from_profiles(
        durations
            .iter()
            .map(|&d| SpeedupProfile::sequential(d).unwrap())
            .collect(),
        m,
    )
    .unwrap();
    let ratio = ratio_of(&instance);
    assert!(ratio <= 4.0 / 3.0 + 0.02, "ratio {ratio}");
}

#[test]
fn certified_lower_bound_is_actually_a_lower_bound() {
    // The certified bound must never exceed the makespan of *any* valid
    // schedule we can construct, in particular the baselines'.
    for seed in 0..10u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::mixed(20, 12, seed))
            .generate()
            .unwrap();
        let result = MrtScheduler::default().schedule(&instance).unwrap();
        let lb = result.certified_lower_bound;
        for schedule in [
            baselines::ludwig(&instance).unwrap(),
            baselines::gang_schedule(&instance),
            baselines::sequential_lpt(&instance),
            result.schedule.clone(),
        ] {
            assert!(
                schedule.makespan() >= lb - 1e-6,
                "certified bound {lb} exceeds a real schedule of length {}",
                schedule.makespan()
            );
        }
        assert!(lb >= bounds::lower_bound(&instance) - 1e-9);
    }
}

#[test]
fn guarantee_scales_with_lambda_parameter() {
    // Using a larger λ weakens the guarantee (1 + λ) but never the validity.
    let instance = WorkloadGenerator::new(WorkloadConfig::wide_tasks(18, 16, 5))
        .generate()
        .unwrap();
    for lambda in [0.6, 0.75, malleable_core::LAMBDA_SQRT3, 0.9, 1.0] {
        let scheduler = MrtScheduler::with_lambda(lambda).unwrap();
        let result = scheduler.schedule(&instance).unwrap();
        assert!(result.schedule.validate(&instance).is_ok());
        assert!(result.ratio() <= 1.0 + lambda + 0.30, "λ = {lambda}");
    }
}
