//! Workspace-level tests of the online scheduling engine: deterministic
//! traces with exactly known makespans per policy, and cross-checks of every
//! policy against the offline MRT solver and the simulator's validator.

use malleable_core::{MalleableTask, SpeedupProfile};
use online::policy::{BatchUntilIdle, EpochReplan, GreedyList, PolicyKind};
use simulator::validate_schedule;
use workload::{Arrival, ArrivalPattern, ArrivalTrace, TraceConfig, WorkloadConfig};

fn sequential(at: f64, duration: f64) -> Arrival {
    Arrival::new(
        at,
        MalleableTask::new(SpeedupProfile::sequential(duration).unwrap()),
    )
}

fn linear(at: f64, work: f64, width: usize) -> Arrival {
    Arrival::new(
        at,
        MalleableTask::new(SpeedupProfile::linear(work, width).unwrap()),
    )
}

/// A hand-computable trace on 2 processors:
///   t=0: linear task of work 4 (2 time units on the whole machine)
///   t=1: two sequential tasks of 1 time unit each
fn known_trace() -> ArrivalTrace {
    ArrivalTrace::new(
        2,
        vec![
            linear(0.0, 4.0, 2),
            sequential(1.0, 1.0),
            sequential(1.0, 1.0),
        ],
    )
    .unwrap()
}

#[test]
fn greedy_makespan_is_exact_on_the_known_trace() {
    // Greedy: task 0 takes both processors over [0, 2] (width 2 minimises its
    // finish).  The sequential tasks arriving at t=1 each wait for a free
    // processor and run over [2, 3] in parallel.
    let trace = known_trace();
    let result = online::run(&trace, &mut GreedyList::new()).unwrap();
    assert!(
        (result.makespan - 3.0).abs() < 1e-9,
        "got {}",
        result.makespan
    );
    assert!((result.mean_flow_time - 2.0).abs() < 1e-9);
}

#[test]
fn epoch_mrt_makespan_is_exact_on_the_known_trace() {
    // Epoch 1.0: arrivals at a tick instant are queued before the tick fires
    // (arrival → completion → departure → tick event order), so the t=1
    // batch holds all three tasks.  Offline MRT packs them into the area-bound optimum of 3
    // time units (linear task on both processors, then the two sequential
    // tasks in parallel); committed at t=1 the last completion is at 4.
    let trace = known_trace();
    let mut policy = EpochReplan::mrt(1.0).unwrap();
    let result = online::run(&trace, &mut policy).unwrap();
    assert_eq!(result.replans, 1);
    assert!(
        (result.makespan - 4.0).abs() < 1e-9,
        "got {}",
        result.makespan
    );
}

#[test]
fn batch_until_idle_makespan_is_exact_on_the_known_trace() {
    // Batch: task 0 starts immediately ([0, 2]).  The sequential tasks wait
    // for the drain at t=2, then run in parallel over [2, 3].
    let trace = known_trace();
    let mut policy = BatchUntilIdle::default();
    let result = online::run(&trace, &mut policy).unwrap();
    assert_eq!(result.replans, 2);
    assert!(
        (result.makespan - 3.0).abs() < 1e-9,
        "got {}",
        result.makespan
    );
}

#[test]
fn staggered_sequential_arrivals_have_exact_greedy_makespans() {
    // One processor, arrivals back to back with a gap: the makespan is the
    // end of the second busy period.
    //   t=0: 2.0  → [0, 2]
    //   t=1: 0.5  → [2, 2.5]
    //   t=4: 1.0  → [4, 5]   (machine idle over [2.5, 4])
    let trace = ArrivalTrace::new(
        1,
        vec![
            sequential(0.0, 2.0),
            sequential(1.0, 0.5),
            sequential(4.0, 1.0),
        ],
    )
    .unwrap();
    let result = online::run(&trace, &mut GreedyList::new()).unwrap();
    assert!((result.makespan - 5.0).abs() < 1e-9);
    assert!((result.max_flow_time - 2.0).abs() < 1e-9);
}

fn trace_families() -> Vec<(&'static str, ArrivalTrace)> {
    let mut traces = Vec::new();
    for (name, workload, pattern) in [
        (
            "poisson-mixed",
            WorkloadConfig::mixed(50, 8, 21),
            ArrivalPattern::Poisson { rate: 3.0 },
        ),
        (
            "poisson-wide",
            WorkloadConfig::wide_tasks(30, 16, 22),
            ArrivalPattern::Poisson { rate: 2.0 },
        ),
        (
            "bursty-sequential",
            WorkloadConfig::sequential_heavy(60, 8, 23),
            ArrivalPattern::Bursty {
                burst_size: 12,
                burst_gap: 3.0,
            },
        ),
    ] {
        traces.push((
            name,
            ArrivalTrace::generate(&TraceConfig { workload, pattern }).unwrap(),
        ));
    }
    traces
}

fn all_policies() -> Vec<PolicyKind> {
    // The offline planning oracles are resolved through the same registry
    // the CLI and the benches use.
    let registry = solver::default_registry();
    let get = |name: &str| registry.get(name).expect("registered solver");
    vec![
        PolicyKind::Greedy,
        PolicyKind::Epoch {
            period: 1.0,
            solver: get("mrt"),
        },
        PolicyKind::Epoch {
            period: 2.0,
            solver: get("ludwig"),
        },
        PolicyKind::Batch { solver: get("mrt") },
        PolicyKind::Batch {
            solver: get("list"),
        },
    ]
}

#[test]
fn every_policy_dominates_the_offline_run_and_validates() {
    for (family, trace) in trace_families() {
        let instance = trace.instance().unwrap();
        let offline = malleable_core::mrt::schedule(&instance).unwrap();
        for kind in all_policies() {
            let mut policy = kind.build().unwrap();
            let result = online::run(&trace, policy.as_mut()).unwrap();

            // The simulator's strict validator accepts every committed
            // schedule (the trace's offline instance shares task ids).
            let report = validate_schedule(&instance, &result.schedule, None);
            assert!(
                report.is_valid(),
                "{family}/{}: {:?}",
                result.policy,
                report.violations
            );
            // … and no task starts before its arrival.
            assert!(
                online::validate_against_trace(&trace, &result.schedule).is_empty(),
                "{family}/{}: release-date violation",
                result.policy
            );

            // Online can never beat the certified offline lower bound — that
            // is a theorem.  The stronger comparison against the offline MRT
            // *makespan* below is empirical, not a theorem (MRT is itself a
            // √3-approximation): it is a golden-value regression check that
            // holds on these three fixed traces, and everything feeding it —
            // workload generator, vendored RNG, MRT search — is deterministic
            // in-repo, so it can only change when behaviour changes.
            assert!(
                result.makespan >= offline.certified_lower_bound - 1e-9,
                "{family}/{}: makespan {} below the certified bound {}",
                result.policy,
                result.makespan,
                offline.certified_lower_bound
            );
            assert!(
                result.makespan >= offline.schedule.makespan() - 1e-9,
                "{family}/{}: online makespan {} below offline MRT {}",
                result.policy,
                result.makespan,
                offline.schedule.makespan()
            );
        }
    }
}

#[test]
fn engine_runs_are_deterministic() {
    let trace = ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(40, 8, 5),
        pattern: ArrivalPattern::Poisson { rate: 4.0 },
    })
    .unwrap();
    let run_once = || {
        let mut policy = EpochReplan::mrt(0.75).unwrap();
        online::run(&trace, &mut policy).unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.schedule.entries(), b.schedule.entries());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.replans, b.replans);
}

#[test]
fn competitive_reports_are_finite_on_every_family() {
    for (family, trace) in trace_families() {
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let result = online::run(&trace, &mut policy).unwrap();
        let report = online::competitive_report(&trace, &result).unwrap();
        let vs_offline = report.ratio_vs_offline.expect("tasks executed");
        let vs_lb = report.ratio_vs_lower_bound.expect("tasks executed");
        assert!(
            vs_offline.is_finite() && vs_offline >= 1.0 - 1e-9,
            "{family}: ratio vs offline {vs_offline}"
        );
        assert!(
            vs_lb.is_finite() && vs_lb >= 1.0 - 1e-9,
            "{family}: ratio vs LB {vs_lb}"
        );
    }
}
