//! Workspace-level tests of the interval-reservation resource model:
//! property tests over random traces for backfilling, departures and
//! preemptive re-planning, plus the parity pin of the reservation timeline's
//! frontier mode against `ProcessorTimeline` on the offline list algorithms.

use malleable_core::bounds;
use malleable_core::prelude::*;
use online::policy::{EpochReplan, GreedyList, PolicyKind, PolicyOptions};
use packing::reservations::{HolePolicy, ReservationTimeline};
use packing::timeline::TieBreak;
use proptest::prelude::*;
use simulator::{validate_piecewise_subset, validate_schedule, validate_schedule_subset};
use workload::{ArrivalPattern, ArrivalTrace, DeparturePolicy, TraceConfig, WorkloadConfig};

fn trace(tasks: usize, processors: usize, seed: u64, bursty: bool) -> ArrivalTrace {
    let pattern = if bursty {
        ArrivalPattern::Bursty {
            burst_size: (tasks / 4).max(2),
            burst_gap: 3.0,
        }
    } else {
        ArrivalPattern::Poisson { rate: 4.0 }
    };
    ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(tasks, processors, seed),
        pattern,
    })
    .unwrap()
}

// Every policy × option combination on a departure-bearing trace: the
// schedule passes the simulator's structural checks (subset mode, since
// departed tasks are absent) and the online conditions — no task starts
// before its arrival or after its departure.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn backfilled_and_preempted_schedules_validate(
        tasks in 12usize..30,
        seed in 0u64..1000,
        patience in 1.0f64..6.0,
        bursty in 0usize..2,
    ) {
        let trace = trace(tasks, 8, seed, bursty == 1)
            .with_departures(DeparturePolicy::Patience { mean: patience }, seed)
            .unwrap();
        let instance = trace.instance().unwrap();
        let registry = solver::default_registry();
        let combos = [
            PolicyOptions { backfill: true, ..PolicyOptions::default() },
            PolicyOptions { preempt_queued: true, ..PolicyOptions::default() },
            PolicyOptions { backfill: true, preempt_queued: true, ..PolicyOptions::default() },
        ];
        for kind in [
            PolicyKind::Greedy,
            PolicyKind::Epoch { period: 1.0, solver: registry.get("mrt").unwrap() },
            PolicyKind::Batch { solver: registry.get("list").unwrap() },
        ] {
            for options in &combos {
                let mut policy = kind.build_with(options.clone()).unwrap();
                let result = online::run(&trace, policy.as_mut()).unwrap();
                let report = validate_schedule_subset(&instance, &result.schedule, None);
                prop_assert!(
                    report.is_valid(),
                    "{} {options:?}: {:?}", result.policy, report.violations
                );
                let violations = online::validate_against_trace(&trace, &result.schedule);
                prop_assert!(
                    violations.is_empty(),
                    "{} {options:?}: {violations:?}", result.policy
                );
                prop_assert_eq!(result.schedule.len() + result.departed, trace.len());
                // Departed tasks really departed: each unscheduled task has a
                // deadline that fired while it was still waiting or queued.
                let scheduled: Vec<bool> = {
                    let mut seen = vec![false; trace.len()];
                    for e in result.schedule.entries() { seen[e.task] = true; }
                    seen
                };
                for (task, seen) in scheduled.iter().enumerate() {
                    if !seen {
                        prop_assert!(trace.arrivals()[task].departs_at.is_some());
                    }
                }
            }
        }
    }
}

/// Backfilling never worsens the makespan *in the mean* over a seed sweep,
/// per policy and arrival pattern, and per-trace regressions are rare and
/// bounded.
///
/// A strict per-trace "never worse" is provably false for *any* list-type
/// engine: placing a task earlier (here: inside a hole) can re-shape the
/// downstream frontier and lengthen the final schedule — the classical
/// Graham scheduling anomaly.  What the reservation model does guarantee is
/// per-*decision* domination (the hole-aware window never starts later than
/// the frontier window on the same machine state — pinned by a property
/// test in `packing::reservations`); at whole-trace level the honest claim
/// is statistical, and this test pins it deterministically.
#[test]
fn backfilling_dominates_on_average() {
    let registry = solver::default_registry();
    for (policy_label, kind) in [
        ("greedy", PolicyKind::Greedy),
        (
            "epoch-mrt",
            PolicyKind::Epoch {
                period: 1.0,
                solver: registry.get("mrt").unwrap(),
            },
        ),
    ] {
        for bursty in [false, true] {
            let mut frontier_sum = 0.0;
            let mut backfill_sum = 0.0;
            let mut worse = 0usize;
            let seeds = 20u64;
            for seed in 0..seeds {
                let trace = trace(32, 8, seed, bursty);
                let frontier = {
                    let mut policy = kind.build().unwrap();
                    online::run(&trace, policy.as_mut()).unwrap()
                };
                let backfill = {
                    let mut policy = kind
                        .build_with(PolicyOptions {
                            backfill: true,
                            ..PolicyOptions::default()
                        })
                        .unwrap();
                    online::run(&trace, policy.as_mut()).unwrap()
                };
                assert!(
                    validate_schedule(&trace.instance().unwrap(), &backfill.schedule, None)
                        .is_valid()
                );
                frontier_sum += frontier.makespan;
                backfill_sum += backfill.makespan;
                if backfill.makespan > frontier.makespan + 1e-9 {
                    worse += 1;
                }
            }
            assert!(
                backfill_sum <= frontier_sum + 1e-9,
                "{policy_label}/bursty={bursty}: backfill mean {} vs frontier mean {}",
                backfill_sum / seeds as f64,
                frontier_sum / seeds as f64
            );
            assert!(
                worse <= seeds as usize / 5,
                "{policy_label}/bursty={bursty}: {worse}/{seeds} anomalous traces"
            );
        }
    }
}

// Departures only ever remove work: with departures enabled the engine
// schedules a subset of the tasks, never starts one after its deadline, and
// the makespan never exceeds the departure-free run.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn departures_remove_work_monotonically(
        tasks in 10usize..30,
        seed in 0u64..1000,
        patience in 0.5f64..4.0,
    ) {
        let base = trace(tasks, 8, seed, true);
        let departing = base
            .clone()
            .with_departures(DeparturePolicy::Patience { mean: patience }, seed)
            .unwrap();
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let full = online::run(&base, &mut policy).unwrap();
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let dropped = online::run(&departing, &mut policy).unwrap();
        prop_assert!(dropped.schedule.len() <= full.schedule.len());
        prop_assert_eq!(dropped.schedule.len() + dropped.departed, departing.len());
        prop_assert!(online::validate_against_trace(&departing, &dropped.schedule).is_empty());
    }
}

/// The parity pin of the tentpole: replaying the exact placement sequences
/// the offline list algorithms commit through `ProcessorTimeline` into a
/// frontier-mode `ReservationTimeline` reproduces every placement
/// bit-for-bit — zero behavioural drift for the offline algorithms.
#[test]
fn reservation_frontier_mode_matches_offline_list_algorithms() {
    use workload::WorkloadGenerator;
    for seed in 0..8u64 {
        let instance = WorkloadGenerator::new(WorkloadConfig::mixed(18, 8, 300 + seed))
            .generate()
            .unwrap();
        // The canonical list construction at the guaranteed-feasible bound —
        // the same path the `list` solver and the §3 analysis use.
        let omega = bounds::upper_bound(&instance);
        let allotment = Allotment::canonical(&instance, omega).unwrap();
        for order in [
            ListOrder::DecreasingAllottedTime,
            ListOrder::DecreasingSequentialTime,
            ListOrder::ParallelFirst,
            ListOrder::AsGiven,
        ] {
            let schedule = schedule_rigid(&instance, &allotment, order);
            let mut reservations = ReservationTimeline::new(8, HolePolicy::FrontierOnly);
            // Entries are pushed in commit order; replay that order.
            for entry in schedule.entries() {
                let (window, _) = reservations.place(
                    entry.processors.count,
                    entry.duration,
                    TieBreak::PaperConvention,
                );
                assert_eq!(
                    (window.first, window.start),
                    (entry.processors.first, entry.start),
                    "seed {seed} {order:?}: drift on task {}",
                    entry.task
                );
            }
            assert!((reservations.makespan() - schedule.makespan()).abs() < 1e-12);
        }
    }
}

/// The preemption acceptance scenario at workspace level: on a bursty trace
/// whose early epochs queue malleable work behind sequential work, the
/// preemptive re-planner validates and never loses to its non-preemptive
/// twin on the engine's own shipped example (see
/// `online::engine` unit tests for the hand-computed version).
#[test]
fn preemptive_epoch_replanning_validates_on_random_bursts() {
    for seed in 0..6u64 {
        let trace = trace(24, 8, 400 + seed, true);
        let instance = trace.instance().unwrap();
        let plain = {
            let mut policy = EpochReplan::mrt(1.0).unwrap();
            online::run(&trace, &mut policy).unwrap()
        };
        let preemptive = {
            let mut policy = EpochReplan::mrt(1.0).unwrap().with_preempt_queued(true);
            online::run(&trace, &mut policy).unwrap()
        };
        for result in [&plain, &preemptive] {
            let report = validate_schedule(&instance, &result.schedule, None);
            assert!(report.is_valid(), "seed {seed}: {:?}", report.violations);
            assert!(online::validate_against_trace(&trace, &result.schedule).is_empty());
        }
        // Preemption must never break the certified offline bound.
        let offline = malleable_core::mrt::schedule(&instance).unwrap();
        assert!(preemptive.makespan >= offline.certified_lower_bound - 1e-9);
    }
}

// Mid-execution re-allotment across every speed-up profile generator and
// arrival pattern: any sequence of re-allotments the engine performs
// conserves total work within 1e-6 (checked per task on the piecewise
// schedule), the extended simulator validation accepts every
// engine-produced piecewise schedule, and the online conditions still hold.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn reallotted_schedules_conserve_work_and_validate(
        tasks in 10usize..26,
        seed in 0u64..1000,
        family in 0usize..3,
        bursty in 0usize..2,
        with_departures in 0usize..2,
        backfill in 0usize..2,
    ) {
        // Each workload family draws from a different mix of the speed-up
        // generators (Amdahl, power-law, communication-overhead, step,
        // linear, sequential).
        let workload = match family {
            0 => WorkloadConfig::mixed(tasks, 8, seed),
            1 => WorkloadConfig::wide_tasks(tasks, 8, seed),
            _ => WorkloadConfig::sequential_heavy(tasks, 8, seed),
        };
        let pattern = if bursty == 1 {
            ArrivalPattern::Bursty { burst_size: (tasks / 3).max(2), burst_gap: 2.0 }
        } else {
            ArrivalPattern::Poisson { rate: 4.0 }
        };
        let mut trace = ArrivalTrace::generate(&TraceConfig { workload, pattern }).unwrap();
        if with_departures == 1 {
            trace = trace
                .with_departures(DeparturePolicy::Patience { mean: 4.0 }, seed)
                .unwrap();
        }
        let instance = trace.instance().unwrap();
        let registry = solver::default_registry();
        let options = PolicyOptions {
            backfill: backfill == 1,
            preempt_queued: true,
            preempt_running: true,
            ..PolicyOptions::default()
        };
        let kind = PolicyKind::Epoch { period: 1.0, solver: registry.get("mrt").unwrap() };
        let mut policy = kind.build_with(options).unwrap();
        let result = online::run(&trace, policy.as_mut()).unwrap();
        // Extended simulator validation: per-segment feasibility + per-task
        // work conservation within 1e-6.
        let report = validate_piecewise_subset(&instance, &result.schedule, None);
        prop_assert!(report.is_valid(), "{}: {:?}", result.policy, report.violations);
        // Direct work-conservation recomputation, independent of the
        // validator's implementation.
        let mut executed = vec![0.0f64; trace.len()];
        for e in result.schedule.entries() {
            executed[e.task] += e.duration / instance.time(e.task, e.processors.count);
        }
        for (task, &fraction) in executed.iter().enumerate() {
            if fraction > 0.0 {
                prop_assert!(
                    (fraction - 1.0).abs() <= 1e-6,
                    "task {task} executed fraction {fraction}"
                );
            } else {
                prop_assert!(trace.arrivals()[task].departs_at.is_some());
            }
        }
        // Online conditions (arrival/departure bounds, processor overlaps).
        let violations = online::validate_against_trace(&trace, &result.schedule);
        prop_assert!(violations.is_empty(), "{}: {violations:?}", result.policy);
        // Re-allotment never breaks the certified offline bound when no
        // task departed (the executed set is then the full instance).
        if result.departed == 0 {
            let offline = malleable_core::mrt::schedule(&instance).unwrap();
            prop_assert!(result.makespan >= offline.certified_lower_bound - 1e-9);
        }
    }
}

/// Backfill strictly beats the frontier engine on mixed traffic whose wide
/// tasks carve staircase holes (the deterministic end-to-end version of the
/// bench gate), for both the greedy and the epoch re-planning policy.
#[test]
fn backfill_strictly_improves_on_hole_heavy_traces() {
    let trace = ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(40, 8, 0),
        pattern: ArrivalPattern::Poisson { rate: 4.0 },
    })
    .unwrap();
    let registry = solver::default_registry();
    let mut policy = EpochReplan::with_solver(1.0, registry.get("mrt").unwrap()).unwrap();
    let frontier = online::run(&trace, &mut policy).unwrap();
    let mut policy = EpochReplan::with_solver(1.0, registry.get("mrt").unwrap())
        .unwrap()
        .with_backfill(true);
    let backfill = online::run(&trace, &mut policy).unwrap();
    assert!(
        backfill.makespan < frontier.makespan - 1e-9,
        "no strict improvement: backfill {} vs frontier {}",
        backfill.makespan,
        frontier.makespan
    );
    assert!(validate_schedule(&trace.instance().unwrap(), &backfill.schedule, None).is_valid());
    // The greedy policy profits too on the same trace.
    let frontier = online::run(&trace, &mut GreedyList::new()).unwrap();
    let backfill = online::run(&trace, &mut GreedyList::backfilling()).unwrap();
    assert!(
        backfill.makespan <= frontier.makespan + 1e-9,
        "greedy backfill regressed: {} vs {}",
        backfill.makespan,
        frontier.makespan
    );
}
