//! Integration tests for the precedence-graph extension: the level-by-level
//! reuse of the paper's √3 scheduler and the CPA heuristic must cooperate
//! with the rest of the workspace (workload profiles, simulator validation).

use malleable_core::prelude::*;
use precedence::{CpaScheduler, LevelScheduler, PrecedenceInstance, TaskGraph};
use simulator::validate_schedule;
use workload::SpeedupFamily;

fn amdahl(work: f64, alpha: f64, m: usize) -> MalleableTask {
    MalleableTask::new(SpeedupFamily::Amdahl { alpha }.profile(work, m).unwrap())
}

/// A three-stage pipeline replicated `width` times, joined by a final task —
/// the tree-like structure of the paper's ocean application.
fn pipeline_instance(width: usize, m: usize) -> PrecedenceInstance {
    let mut tasks = Vec::new();
    let mut edges = Vec::new();
    for lane in 0..width {
        let base = lane * 3;
        tasks.push(amdahl(4.0 + lane as f64, 0.1, m)); // stage 1
        tasks.push(amdahl(6.0 + lane as f64, 0.15, m)); // stage 2
        tasks.push(amdahl(2.0, 0.3, m)); // stage 3
        edges.push((base, base + 1));
        edges.push((base + 1, base + 2));
    }
    let sink = tasks.len();
    tasks.push(MalleableTask::new(
        SpeedupFamily::Sequential.profile(1.0, m).unwrap(),
    ));
    for lane in 0..width {
        edges.push((lane * 3 + 2, sink));
    }
    let graph = TaskGraph::new(tasks, edges).unwrap();
    PrecedenceInstance::new(graph, m).unwrap()
}

#[test]
fn pipelines_are_scheduled_validly_by_both_extensions() {
    for width in [1usize, 3, 6] {
        for m in [4usize, 16] {
            let instance = pipeline_instance(width, m);
            let lb = precedence::lower_bound(&instance);
            let level = LevelScheduler::default().schedule(&instance).unwrap();
            let cpa = CpaScheduler::default().schedule(&instance).unwrap();
            for schedule in [&level, &cpa] {
                instance.validate(schedule).unwrap();
                // The machine-level validator (which ignores precedence) must
                // also accept the schedule.
                let flat = instance.independent().unwrap();
                let report = validate_schedule(&flat, schedule, None);
                assert!(report.is_valid(), "{:?}", report.violations);
                assert!(schedule.makespan() >= lb - 1e-9);
            }
        }
    }
}

#[test]
fn cpa_overlaps_independent_lanes_better_than_levels_on_unbalanced_pipelines() {
    // With very unbalanced lanes the strict level barrier of the level
    // scheduler wastes time; CPA may overlap lanes.  We only require that CPA
    // is not dramatically worse — both must stay within 3x of the bound.
    let instance = pipeline_instance(5, 16);
    let lb = precedence::lower_bound(&instance);
    let level = LevelScheduler::default().schedule(&instance).unwrap();
    let cpa = CpaScheduler::default().schedule(&instance).unwrap();
    assert!(level.makespan() <= 3.0 * lb);
    assert!(cpa.makespan() <= 3.0 * lb);
}

#[test]
fn single_chain_reduces_to_sum_of_best_times() {
    let m = 8;
    let tasks: Vec<MalleableTask> = (0..4)
        .map(|i| MalleableTask::new(SpeedupProfile::linear(4.0 + i as f64, m).unwrap()))
        .collect();
    let expected: f64 = tasks.iter().map(|t| t.profile.min_time()).sum();
    let graph = TaskGraph::chain(tasks).unwrap();
    let instance = PrecedenceInstance::new(graph, m).unwrap();
    let cpa = CpaScheduler::default().schedule(&instance).unwrap();
    instance.validate(&cpa).unwrap();
    // CPA grows every chain task to the full machine, reaching the
    // critical-path bound exactly (linear speed-up).
    assert!((cpa.makespan() - expected).abs() < 1e-6);
}

#[test]
fn precedence_instances_reject_invalid_schedules_from_other_instances() {
    let m = 8;
    let a = pipeline_instance(2, m);
    let b = pipeline_instance(3, m);
    let schedule_for_b = LevelScheduler::default().schedule(&b).unwrap();
    // Scheduling b's tasks cannot validate against a (different task count).
    assert!(a.validate(&schedule_for_b).is_err());
}
