//! Instance serialisation round-trips and reproducibility across the JSON
//! boundary.

use malleable_core::prelude::*;
use workload::{
    instance_from_json, instance_to_json, instances_approx_equal, WorkloadConfig, WorkloadGenerator,
};

#[test]
fn json_round_trip_preserves_scheduling_results() {
    for seed in 0..5u64 {
        let original = WorkloadGenerator::new(WorkloadConfig::mixed(20, 8, seed))
            .generate()
            .unwrap();
        let json = instance_to_json(&original);
        let parsed = instance_from_json(&json).unwrap();
        assert!(instances_approx_equal(&original, &parsed, 1e-12));

        let a = MrtScheduler::default().schedule(&original).unwrap();
        let b = MrtScheduler::default().schedule(&parsed).unwrap();
        let rel = (a.schedule.makespan() - b.schedule.makespan()).abs() / a.schedule.makespan();
        assert!(rel < 1e-9);
        assert_eq!(a.schedule.entries().len(), b.schedule.entries().len());
    }
}

#[test]
fn json_documents_are_human_readable() {
    let instance = Instance::new(
        vec![MalleableTask::named(
            "solver",
            SpeedupProfile::new(vec![4.0, 2.5, 2.0]).unwrap(),
        )],
        4,
    )
    .unwrap();
    let json = instance_to_json(&instance);
    assert!(json.contains("\"solver\""));
    assert!(json.contains("\"processors\": 4"));
}

#[test]
fn invalid_documents_are_rejected_with_errors() {
    assert!(instance_from_json("").is_err());
    assert!(instance_from_json("{}").is_err());
    let negative_time = r#"{ "processors": 2, "tasks": [{ "name": null, "times": [-1.0] }] }"#;
    assert!(instance_from_json(negative_time).is_err());
    let zero_processors = r#"{ "processors": 0, "tasks": [{ "name": null, "times": [1.0] }] }"#;
    assert!(instance_from_json(zero_processors).is_err());
}
