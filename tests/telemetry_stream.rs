//! The structured telemetry stream of a recorded engine run.
//!
//! Pins the **exact event sequence** of the shipped PR-5
//! running-reallotment scenario (deterministic: fixed trace, fixed epoch
//! grid, deterministic solver), the JSONL round trip through the vendored
//! `serde_json`, and the counter/summary surface the CLI and the
//! `online_report` bench build on.

use online::policy::{EpochReplan, PolicyKind, PolicyOptions};
use telemetry::{names, CollectingRecorder, NoopRecorder, SharedRecorder, TelemetryEvent};

/// Run the running-reallotment scenario fully recorded and return the
/// recorder plus the engine result.
fn recorded_scenario() -> (std::sync::Arc<CollectingRecorder>, online::OnlineResult) {
    let trace = online::running_reallotment_scenario().expect("valid scenario");
    let recorder = CollectingRecorder::shared();
    let mut policy = EpochReplan::mrt(1.0)
        .unwrap()
        .with_preempt_queued(true)
        .with_preempt_running(true)
        .with_recorder(recorder.clone() as SharedRecorder);
    let result = online::run_recorded(&trace, &mut policy, recorder.as_ref()).unwrap();
    (recorder, result)
}

#[test]
fn running_reallotment_scenario_emits_the_exact_event_sequence() {
    let (recorder, result) = recorded_scenario();
    let expected_makespan = 2.0 + 8.0 * (7.0 / 9.0);
    assert!((result.makespan - expected_makespan).abs() < 1e-6);

    let events = recorder.events();
    // Timing fields (`wall_ns`) are nondeterministic; everything else in the
    // stream is pinned exactly.  The story: tick 1 plans A alone onto the
    // whole machine; tick 2 truncates the running A and re-solves {A', B}
    // side by side (warm-started); both complete; the utilisation timeline
    // closes the stream.
    assert_eq!(events.len(), 19, "{events:#?}");
    match &events[0] {
        TelemetryEvent::SolveStart {
            time,
            solver,
            pending,
            warm_start,
        } => {
            assert_eq!(*time, 1.0);
            assert_eq!(solver, "mrt");
            assert_eq!(*pending, 1);
            assert!(!warm_start, "the first solve has no previous ω to seed");
        }
        other => panic!("event 0: {other:?}"),
    }
    match &events[1] {
        TelemetryEvent::SolveEnd {
            time,
            solver,
            scheduled,
            warm_start,
            ..
        } => {
            assert_eq!(*time, 1.0);
            assert_eq!(solver, "mrt");
            assert_eq!(*scheduled, 1);
            assert!(!warm_start);
        }
        other => panic!("event 1: {other:?}"),
    }
    match &events[2] {
        TelemetryEvent::Place {
            time,
            task,
            start,
            duration,
            processors,
            backfilled,
        } => {
            assert_eq!((*time, *task, *start), (1.0, 0, 1.0));
            assert!((duration - 4.5).abs() < 1e-9);
            assert_eq!(*processors, 2);
            assert!(!backfilled);
        }
        other => panic!("event 2: {other:?}"),
    }
    match &events[3] {
        TelemetryEvent::Truncate { time, task, at } => {
            assert_eq!((*time, *task, *at), (2.0, 0, 2.0));
        }
        other => panic!("event 3: {other:?}"),
    }
    match &events[4] {
        TelemetryEvent::SolveStart {
            time,
            pending,
            warm_start,
            ..
        } => {
            assert_eq!(*time, 2.0);
            assert_eq!(*pending, 2, "the residual A' plus the newcomer B");
            assert!(warm_start, "the second solve is seeded from epoch 1's ω");
        }
        other => panic!("event 4: {other:?}"),
    }
    assert!(matches!(
        &events[5],
        TelemetryEvent::SolveEnd {
            scheduled: 2,
            warm_start: true,
            ..
        }
    ));
    // The re-solve narrows A to one processor (duration 8·7/9) and runs B
    // beside it.
    match &events[6] {
        TelemetryEvent::Place {
            task,
            start,
            duration,
            processors,
            ..
        } => {
            assert_eq!((*task, *start, *processors), (0, 2.0, 1));
            assert!((duration - 8.0 * (7.0 / 9.0)).abs() < 1e-9);
        }
        other => panic!("event 6: {other:?}"),
    }
    match &events[7] {
        TelemetryEvent::Place {
            task,
            start,
            duration,
            processors,
            ..
        } => {
            assert_eq!((*task, *start, *processors), (1, 2.0, 1));
            assert!((duration - 6.0).abs() < 1e-9);
        }
        other => panic!("event 7: {other:?}"),
    }
    assert!(matches!(
        &events[8],
        TelemetryEvent::Complete { time, task: 1 } if (*time - 8.0).abs() < 1e-9
    ));
    assert!(matches!(
        &events[9],
        TelemetryEvent::Complete { time, task: 0 } if (*time - expected_makespan).abs() < 1e-6
    ));
    // Utilisation timeline on the epoch grid: idle before the first tick,
    // saturated while both run, half-busy in the final fractional epoch.
    for (index, event) in events.iter().enumerate().skip(10) {
        match event {
            TelemetryEvent::EpochUtilization { start, end, busy } => {
                assert!((start - (index - 10) as f64).abs() < 1e-9);
                assert!(*end <= result.makespan + 1e-9);
                let expected_busy = match index {
                    10 => 0.0,
                    18 => 0.5,
                    _ => 1.0,
                };
                assert!(
                    (busy - expected_busy).abs() < 1e-9,
                    "epoch {index}: busy {busy}"
                );
            }
            other => panic!("event {index}: {other:?}"),
        }
    }

    // The counter surface agrees with the event stream and the result.
    assert_eq!(recorder.counter(names::PLACEMENTS), 3);
    assert_eq!(recorder.counter(names::TRUNCATIONS), 1);
    assert_eq!(recorder.counter(names::REVOCATIONS), 0);
    assert_eq!(recorder.counter(names::COMPLETIONS), 2);
    assert_eq!(recorder.counter(names::REPLANS), 2);
    assert_eq!(recorder.counter(names::EVENTS), result.events as u64);
    assert_eq!(recorder.counter(names::TIMELINE_RESERVATIONS), 3);
    assert_eq!(recorder.counter(names::TIMELINE_TRUNCATIONS), 1);
    assert_eq!(recorder.invariant_violations(), 0);
    // Two epoch solves, each sampled into both span histograms.
    assert_eq!(recorder.histogram(names::SOLVE_NS).unwrap().count(), 2);
    assert_eq!(recorder.histogram(names::SOLVE_PROBES).unwrap().count(), 2);
    assert_eq!(
        recorder.histogram(names::DECISION_NS).unwrap().count(),
        result.events as u64
    );
}

#[test]
fn jsonl_stream_round_trips_through_serde_json() {
    let (recorder, _) = recorded_scenario();
    let mut buffer = Vec::new();
    recorder.write_jsonl(&mut buffer).unwrap();
    let text = String::from_utf8(buffer).unwrap();
    assert_eq!(text.lines().count(), recorder.events().len());
    let parsed: Vec<TelemetryEvent> = text
        .lines()
        .map(|line| {
            TelemetryEvent::from_json(&serde_json::from_str(line).unwrap())
                .expect("every line decodes")
        })
        .collect();
    assert_eq!(parsed, recorder.events(), "lossless JSONL round trip");
}

#[test]
fn summary_reports_the_scenario_figures() {
    let (recorder, result) = recorded_scenario();
    let summary = online::summarize(&recorder, &result, Some(1.0));
    assert_eq!(summary.placements, 3);
    assert_eq!(summary.truncations, 1);
    assert_eq!(summary.revocations, 0);
    assert_eq!(summary.invariant_violations, 0);
    assert_eq!(summary.decision.count, result.events as u64);
    assert_eq!(summary.solve.count, 2);
    assert!(summary.run_ns > 0);
    assert!(summary.tasks_per_sec > 0.0);
    assert_eq!(summary.utilization_timeline.len(), 9);
    // busy_integral = 2·1 (A wide) + 2·6.22 (A' + B side by side) minus the
    // final stagger; the time-weighted figure equals the schedule's exact
    // utilisation integral.
    assert!((summary.utilization - result.utilization()).abs() < 1e-9);
    let json = summary.to_json();
    let round = serde_json::from_str(&serde_json::to_string(&json).unwrap()).unwrap();
    assert_eq!(json, round, "summary JSON round trips");
}

#[test]
fn noop_recorded_run_matches_the_unrecorded_run() {
    let trace = online::running_reallotment_scenario().expect("valid scenario");
    let build = || {
        EpochReplan::mrt(1.0)
            .unwrap()
            .with_preempt_queued(true)
            .with_preempt_running(true)
    };
    let plain = online::run(&trace, &mut build()).unwrap();
    let recorded = online::run_recorded(&trace, &mut build(), &NoopRecorder).unwrap();
    assert_eq!(plain.makespan, recorded.makespan);
    assert_eq!(plain.events, recorded.events);
    assert_eq!(plain.replans, recorded.replans);
    assert_eq!(plain.reallotted, recorded.reallotted);
    assert_eq!(plain.busy_integral, recorded.busy_integral);
    assert_eq!(plain.schedule.entries(), recorded.schedule.entries());
}

#[test]
fn policy_options_thread_the_recorder_through_build_with() {
    // The registry path the CLI and bench use: `PolicyKind::build_with`
    // must hand the recorder to the policy so workspace counters appear.
    let trace = online::running_reallotment_scenario().expect("valid scenario");
    let recorder = CollectingRecorder::shared();
    let registry = solver::default_registry();
    let kind = PolicyKind::Epoch {
        period: 1.0,
        solver: registry.get("mrt").unwrap(),
    };
    let mut policy = kind
        .build_with(PolicyOptions {
            preempt_queued: true,
            preempt_running: true,
            recorder: Some(recorder.clone() as SharedRecorder),
            ..PolicyOptions::default()
        })
        .unwrap();
    online::run_recorded(&trace, policy.as_mut(), recorder.as_ref()).unwrap();
    assert!(
        recorder.counter(names::WORKSPACE_PROBES) > 0,
        "the policy's workspace counters must land in the shared recorder"
    );
}
