//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, vendored because the build environment has no registry
//! access.
//!
//! It keeps the same bench-authoring API (`criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`black_box`]) but replaces the statistical machinery
//! with a plain wall-clock loop: every benchmark is warmed up, then timed for
//! a fixed number of iterations, and one line of results (mean and total) is
//! printed.  Bench targets using it must set `harness = false`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    ///
    /// Mirrors the real criterion, which reads the raw clock; the
    /// workspace-wide `clippy.toml` ban on `Instant::now` exempts this
    /// vendored timing loop explicitly.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed runs so lazy initialisation is excluded.
        for _ in 0..self.iterations.min(3) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count used for every benchmark of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // The real crate's sample_size counts statistical samples; here it
        // directly scales the timing loop, clamped to keep runs short.
        self.sample_size = (n as u64).clamp(1, 1000);
        self
    }

    /// Record a throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = if bencher.iterations > 0 {
            bencher.elapsed / bencher.iterations as u32
        } else {
            Duration::ZERO
        };
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  ({n} elems/iter)"),
            Some(Throughput::Bytes(n)) => format!("  ({n} bytes/iter)"),
            None => String::new(),
        };
        println!(
            "bench {:<48} mean {:>12.3?}  ({} iters, total {:.3?}){}",
            format!("{}/{}", self.name, id),
            mean,
            bencher.iterations,
            bencher.elapsed,
            throughput
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; printing is immediate).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run_one(&name, f);
        self
    }

    /// Number of benchmarks executed so far (used by the macro-generated main).
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point (`harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_execute() {
        benches();
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
