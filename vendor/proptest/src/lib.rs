//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, vendored because the build environment has no registry access.
//!
//! It implements the subset of the API this workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * range strategies over integers and floats, tuple strategies, and
//!   `prop::collection::vec`.
//!
//! Unlike the real crate there is no shrinking: a failing case reports the
//! sampled inputs and the deterministic case number, which is enough to
//! reproduce it (sampling is a pure function of the test name and case
//! index).  The number of cases per test defaults to 64 and can be raised
//! with the `PROPTEST_CASES` environment variable or
//! `ProptestConfig::with_cases`.

use std::fmt;

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible size arguments for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            SizeRange {
                min: lo,
                max: hi + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_usize(self.size.min, self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The error type carried by `prop_assert!` failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module alias so `prop::collection::vec` resolves after a glob import.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body, failing the case (with its
/// sampled inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Define property tests.  Each argument is drawn from its strategy for a
/// number of deterministic cases; the body runs once per case and fails the
/// test (reporting the inputs) when a `prop_assert!` is violated or the body
/// panics.
#[macro_export]
macro_rules! proptest {
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.resolved_cases();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // Render the inputs before the body runs: the body takes
                    // them by value and may consume them.
                    let rendered_inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = result {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:{}",
                            case + 1,
                            cases,
                            error,
                            rendered_inputs
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let x = (1.5f64..9.0).sample(&mut rng);
            assert!((1.5..9.0).contains(&x));
            let n = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&n));
            let u = (0u64..5).sample(&mut rng);
            assert!(u < 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = prop::collection::vec(0.0f64..1.0, 2..6);
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec((0u64..100, 0.0f64..1.0), 1..20);
        let a = strat.sample(&mut TestRng::for_case("det", 7));
        let b = strat.sample(&mut TestRng::for_case("det", 7));
        let c = strat.sample(&mut TestRng::for_case("det", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself: strategies, assertions, doc attributes.
        #[test]
        fn macro_round_trip(n in 1usize..10, xs in prop::collection::vec(0.0f64..2.0, 0..8)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() < 8, "len {} out of range", xs.len());
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            fn inner(n in 0usize..4) {
                prop_assert!(n < 2, "n was {}", n);
            }
        }
        inner();
    }
}
