//! Value-generation strategies.
//!
//! A [`Strategy`] is a pure sampling function: given the deterministic
//! [`TestRng`] of a case it produces one value.  There is no shrinking —
//! failures report the sampled inputs instead.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A source of random values for property tests.
pub trait Strategy {
    /// The type of the generated values.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of one value (`Just` in the real
/// crate).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A / 0, B / 1)(A / 0, B / 1, C / 2)(
    A / 0,
    B / 1,
    C / 2,
    D / 3
));

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn tuple_strategies_sample_componentwise() {
        let strat = (0u64..10, 0.0f64..1.0, 1usize..3);
        let mut rng = TestRng::for_case("tuple", 0);
        for _ in 0..100 {
            let (a, b, c) = strat.sample(&mut rng);
            assert!(a < 10);
            assert!((0.0..1.0).contains(&b));
            assert!((1..3).contains(&c));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = TestRng::for_case("just", 0);
        assert_eq!(Just(41).sample(&mut rng), 41);
    }

    #[test]
    fn inclusive_ranges_cover_both_ends() {
        let mut rng = TestRng::for_case("incl", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = (0usize..=2).sample(&mut rng);
            seen[v] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
