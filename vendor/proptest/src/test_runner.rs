//! The per-case deterministic generator and the run configuration.

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; this lightweight shim trades a
        // smaller default for suite speed and lets `PROPTEST_CASES` raise it.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies: a pure function of the
/// fully-qualified test name and the case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The generator for one case of one test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xCBF29CE484222325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001B3);
        }
        let mut seed = hash ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = split_mix(&mut seed);
        }
        TestRng { state }
    }

    /// Next raw word (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_default_and_override() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    fn rng_is_a_pure_function_of_name_and_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        let mut c = TestRng::for_case("x::y", 4);
        let mut d = TestRng::for_case("x::z", 3);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(va, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(va, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
        assert_ne!(va, (0..4).map(|_| d.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut rng = TestRng::for_case("unit", 0);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
