//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this workspace has no access to a crate registry,
//! so the external `rand` dependency is replaced by this vendored subset.  It
//! implements exactly the API surface the workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`distributions::Uniform`] — on top of the
//! xoshiro256** generator seeded through SplitMix64 (the same seeding scheme
//! the real crate uses for `seed_from_u64`).
//!
//! The stream of values is *not* bit-compatible with the real `rand` crate;
//! it is deterministic per seed, which is the property the workspace relies
//! on (reproducible workloads and property tests).

/// Low-level entropy source: a generator of raw 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64, used to expand a `u64` seed into generator state.
pub(crate) fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the generator's raw stream
/// (the stand-in for the real crate's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types a uniform range can be sampled over.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive and must be `> lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]` (both ends inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sampling range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sampling range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sampling range");
        // The half-open draw already includes `lo`; the probability mass of
        // exactly hitting `hi` is zero either way for continuous values.
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sampling range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sampling range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The xoshiro256** core shared by the named generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub(crate) fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = split_mix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce it
        // from any seed, but keep the guard for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Xoshiro256 { s }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Uniform distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution that can be sampled with an explicit generator.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A uniform distribution over a closed or half-open interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                T::sample_inclusive(rng, self.lo, self.hi)
            } else {
                T::sample_half_open(rng, self.lo, self.hi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
            let n: usize = rng.gen_range(0..5);
            assert!(n < 5);
            let m: u64 = rng.gen_range(3..=3);
            assert_eq!(m, 3);
        }
    }

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_high = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            seen_high |= x > 0.5;
        }
        assert!(seen_high, "stream looks degenerate");
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new_inclusive(2.0f64, 4.0);
        for _ in 0..500 {
            let x = d.sample(&mut rng);
            assert!((2.0..=4.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits");
    }
}
