//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, vendored because the build environment has no registry access.
//!
//! [`ChaCha8Rng`] runs a genuine ChaCha block function with 8 double-rounds;
//! only the seed expansion differs from the real crate (`seed_from_u64`
//! expands the word through SplitMix64 instead of the upstream scheme), so
//! streams are deterministic per seed but not bit-compatible with upstream.

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic generator built on the ChaCha8 block function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key (8 words) expanded from the seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered output words of the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // Two double-rounds per iteration: 8 rounds total = ChaCha8.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = split_mix(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

/// Re-export of the seeding trait under the path the real crate provides.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let va: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..40).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn rng_trait_methods_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let n: usize = rng.gen_range(0..7);
            assert!(n < 7);
        }
    }

    #[test]
    fn blocks_continue_across_refills() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // 16 words per block and 2 words per u64: draw through >2 blocks.
        let values: Vec<u64> = (0..24).map(|_| rng.next_u64()).collect();
        let distinct: std::collections::HashSet<u64> = values.iter().copied().collect();
        assert!(distinct.len() > 20, "keystream looks degenerate");
    }
}
