//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate, vendored because the build environment has no registry access.
//!
//! Documents are modelled as a dynamic [`Value`] (no derive support — callers
//! build and inspect values explicitly), parsed by a recursive-descent parser
//! and printed compactly or pretty with 2-space indentation, matching the
//! real crate's layout (`"key": value`).  Numbers are stored as `f64`;
//! integral values within the exactly-representable range print without a
//! fractional part, and `Display`-based float formatting guarantees shortest
//! round-tripping output.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, stored as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, when it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Number(n)
                if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 =>
            {
                Some(n as i64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object (key/value pairs in insertion order).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

macro_rules! impl_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(n as f64)
            }
        }
    )*};
}

impl_from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(option: Option<T>) -> Self {
        match option {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

/// Build a [`Value`] from a JSON-looking literal.  Object values and array
/// elements are arbitrary expressions converted through `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::Value::from($val)),)*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($elem),)* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Parse or print errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset the parser stopped at (0 for print errors).
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected `{}`", byte as char))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 128 {
            return self.error("document nests too deeply");
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => self.error(format!("unexpected character `{}`", other as char)),
            None => self.error("unexpected end of input"),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            self.error(format!("expected `{keyword}`"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error {
            message: "invalid utf-8 in number".into(),
            offset: start,
        })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => self.error(format!("invalid number `{text}`")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.error("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                // Surrogate halves and invalid scalars are
                                // replaced; the workspace never emits them.
                                None => out.push('\u{FFFD}'),
                            }
                            self.pos += 4;
                        }
                        _ => return self.error("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| Error {
                        message: "invalid utf-8 in string".into(),
                        offset: self.pos,
                    })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.error("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return self.error("expected `,` or `}`"),
            }
        }
    }
}

/// Parse a JSON document.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return parser.error("trailing characters after the document");
    }
    Ok(value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    const EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53
    if n.fract() == 0.0 && n.abs() < EXACT_INT {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's `Display` for f64 is shortest-round-trip.
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, member)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, key);
                out.push(':');
                out.push(' ');
                write_value(out, member, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Print a document compactly (no error cases; the `Result` mirrors the real
/// crate's signature).
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None);
    Ok(out)
}

/// Print a document with 2-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = json!({
            "processors": 8usize,
            "ratio": 1.5f64,
            "name": "trace-\"x\"\n",
            "flags": vec![true, false],
            "nested": json!({ "empty": Vec::<Value>::new() }),
            "nothing": Value::Null,
        });
        for text in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            let parsed = from_str(&text).unwrap();
            assert_eq!(parsed, doc, "failed for {text}");
        }
    }

    #[test]
    fn accessors_match_variants() {
        let doc = from_str(r#"{ "n": 3, "x": 0.5, "s": "hi", "a": [1, 2], "b": true }"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("x").unwrap().as_u64(), None);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            1e-12,
            123456.789,
            -2.5e17,
            0.816_496_580_927_726,
        ] {
            let text = to_string(&Value::Number(x)).unwrap();
            let parsed = from_str(&text).unwrap();
            assert_eq!(parsed.as_f64(), Some(x), "failed for {text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&json!(42usize)).unwrap(), "42");
        assert_eq!(to_string(&json!(-7i64)).unwrap(), "-7");
        assert_eq!(to_string(&json!(2.5f64)).unwrap(), "2.5");
    }

    #[test]
    fn pretty_layout_matches_serde_json() {
        let doc = json!({ "processors": 2usize, "tasks": vec![json!(1u64)] });
        let text = to_string_pretty(&doc).unwrap();
        assert!(text.contains("\"processors\": 2"), "{text}");
        assert!(text.contains("  \"tasks\": [\n    1\n  ]"), "{text}");
    }

    #[test]
    fn malformed_documents_error_with_position() {
        for bad in ["{ not json", "[1, 2", "\"open", "{\"a\":}", "01x", "[] []"] {
            assert!(from_str(bad).is_err(), "`{bad}` should fail");
        }
        let err = from_str("[1, 2").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn string_escapes_parse() {
        let doc = from_str(r#""a\tbA\\""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\tbA\\"));
    }
}
